let page = Vmem.page_size

module Quarantine = Minesweeper.Quarantine

(* Stand-in for the Boehm-style allocation path MarkUs ships with: a flat
   surcharge over our JeMalloc model's fast path. *)
let boehm_malloc_surcharge = 70
let boehm_free_surcharge = 35

type sweep_state = {
  entries : Quarantine.entry list;
  visited : (int, unit) Hashtbl.t; (* allocation bases proven reachable *)
  completion : int;
}

type t = {
  machine : Alloc.Machine.t;
  je : Alloc.Jemalloc.t;
  threshold : float;
  helpers : int;
  quarantine : Quarantine.t;
  mutable sweep : sweep_state option;
  mutable sweeps : int;
  mutable failed : int;
  mutable visited_bytes : int;
  mutable last_decay_tick : int;
}

let threshold_min_bytes = 128 * 1024
let decay_tick_interval = 1_000_000

let cost t = t.machine.Alloc.Machine.cost
let mem t = t.machine.Alloc.Machine.mem
let now t = Alloc.Machine.now t.machine

let create ?(threshold = 0.25) ?(helpers = 3) machine =
  {
    machine;
    je = Alloc.Jemalloc.create ~extra_byte:false machine;
    threshold;
    helpers;
    quarantine = Quarantine.create machine ~threads:1;
    sweep = None;
    sweeps = 0;
    failed = 0;
    visited_bytes = 0;
    last_decay_tick = 0;
  }

(* ------------------------------------------------------------------ *)
(* Transitive conservative marking (the Boehm-GC style pass)           *)

let mark_transitive t =
  let visited = Hashtbl.create 4096 in
  let worklist = Stack.create () in
  let visited_bytes = ref 0 in
  let object_visits = ref 0 in
  let consider w =
    if Layout.in_heap w then
      match Alloc.Jemalloc.allocation_containing t.je w with
      | Some (base, usable) when not (Hashtbl.mem visited base) ->
        Hashtbl.replace visited base ();
        Stack.push (base, usable) worklist
      | Some _ | None -> ()
  in
  let root_bytes = ref 0 in
  List.iter
    (fun (base, size) ->
      root_bytes := !root_bytes + size;
      Vmem.iter_committed_words (mem t) ~addr:base ~len:size (fun _ w ->
          consider w))
    Layout.root_regions;
  while not (Stack.is_empty worklist) do
    let base, usable = Stack.pop worklist in
    incr object_visits;
    visited_bytes := !visited_bytes + usable;
    (* Unmapped (quarantined-and-released) pages are skipped by the
       committed-words iterator, as Boehm skips inaccessible memory. *)
    Vmem.iter_committed_words (mem t) ~addr:base ~len:usable (fun _ w ->
        consider w)
  done;
  t.visited_bytes <- t.visited_bytes + !visited_bytes;
  (* The synthetic traces under-connect the live object graph compared to
     a real program, where essentially the whole live heap is reachable;
     charge marking for the larger of the two so the cost comparison
     against the linear sweep stays honest. *)
  let traversed = max !visited_bytes
      (int_of_float (0.85 *. float_of_int (Alloc.Jemalloc.live_bytes t.je))) in
  let c = cost t in
  let busy =
    Sim.Cost.bytes_cost c.Sim.Cost.sweep_per_byte !root_bytes
    + Sim.Cost.bytes_cost c.Sim.Cost.mark_per_byte traversed
    + (!object_visits * 12)
  in
  (visited, busy)

(* ------------------------------------------------------------------ *)
(* Quarantine plumbing (shared shape with MineSweeper, no zeroing)     *)

let unmap_min_bytes = 16384

let covered_pages ~addr ~len =
  if len < unmap_min_bytes then None
  else
    let lo = (addr + page - 1) / page * page in
    let hi = (addr + len) / page * page in
    if hi - lo >= page then Some (lo, hi - lo) else None

let restore_unmapped t (e : Quarantine.entry) =
  if e.Quarantine.unmapped_len > 0 then begin
    match covered_pages ~addr:e.Quarantine.addr ~len:e.Quarantine.usable with
    | None -> assert false
    | Some (lo, len) ->
      Vmem.protect (mem t) ~addr:lo ~len Vmem.Read_write;
      Alloc.Machine.charge t.machine (cost t).Sim.Cost.syscall;
      e.Quarantine.unmapped_len <- 0
  end

let release_all t state =
  let c = cost t in
  List.iter
    (fun (e : Quarantine.entry) ->
      Alloc.Machine.charge t.machine c.Sim.Cost.release_per_entry;
      if Hashtbl.mem state.visited e.Quarantine.addr then begin
        t.failed <- t.failed + 1;
        Quarantine.requeue_failed t.quarantine e
      end
      else begin
        restore_unmapped t e;
        Quarantine.release t.quarantine e;
        Alloc.Jemalloc.free t.je e.Quarantine.addr
      end)
    state.entries

let finish_sweep t state =
  let c = cost t in
  (* Boehm's mostly-parallel collection ends with a stop-the-world pass
     over pages dirtied during concurrent marking. *)
  let dirty_pages = Vmem.soft_dirty_pages (mem t) in
  let rescan =
    Sim.Cost.bytes_cost c.Sim.Cost.mark_per_byte (dirty_pages * page)
  in
  let pause = c.Sim.Cost.stw_signal + (rescan / (t.helpers + 1)) in
  Sim.Clock.stall t.machine.Alloc.Machine.clock pause;
  Sim.Clock.background t.machine.Alloc.Machine.clock rescan;
  Alloc.Machine.with_sink t.machine Alloc.Machine.Background (fun () ->
      release_all t state);
  t.sweep <- None

let start_sweep t =
  t.sweeps <- t.sweeps + 1;
  let entries = Quarantine.lock_in t.quarantine in
  Vmem.clear_soft_dirty (mem t);
  let visited, busy =
    Alloc.Machine.with_sink t.machine Alloc.Machine.Background (fun () ->
        mark_transitive t)
  in
  Sim.Clock.background t.machine.Alloc.Machine.clock busy;
  (* Marking is latency- not bandwidth-bound, but the same floor applies
     to its linear root scan; the traversal rarely parallelises all the
     way, so keep a conservative floor of the heap at DRAM speed. *)
  let floor_cycles =
    Sim.Cost.bytes_cost 0.0625 (Alloc.Jemalloc.live_bytes t.je)
  in
  let duration = max (busy / (t.helpers + 1)) floor_cycles in
  t.sweep <- Some { entries; visited; completion = now t + duration }

let trigger_due t =
  let q = t.quarantine in
  let fresh = Quarantine.fresh_mapped_bytes q in
  let heap =
    Alloc.Jemalloc.live_bytes t.je
    - Quarantine.failed_bytes q
    - Quarantine.unmapped_bytes q
  in
  fresh >= threshold_min_bytes
  && float_of_int fresh >= t.threshold *. float_of_int (max heap 1)

let maybe_sweep t = if t.sweep = None && trigger_due t then start_sweep t

let tick t =
  (match t.sweep with
  | Some state when now t >= state.completion ->
    finish_sweep t state;
    maybe_sweep t
  | Some _ | None -> ());
  let n = now t in
  if n - t.last_decay_tick >= decay_tick_interval then begin
    t.last_decay_tick <- n;
    Alloc.Machine.with_sink t.machine Alloc.Machine.Background (fun () ->
        Alloc.Jemalloc.purge_tick t.je)
  end

let drain t =
  Quarantine.flush_all t.quarantine;
  match t.sweep with
  | Some state -> finish_sweep t state
  | None -> ()

(* MarkUs limits worst-case overheads under extreme allocation rates by
   falling back to stop-the-world collection; model that as an
   allocation pause identical in shape to MineSweeper's. *)
let maybe_pause t =
  match t.sweep with
  | Some state ->
    let heap = max 1 (Alloc.Jemalloc.live_bytes t.je) in
    if
      float_of_int (Quarantine.fresh_mapped_bytes t.quarantine)
      >= 2.0 *. float_of_int heap
    then begin
      let wait = max 0 (state.completion - now t) in
      Sim.Clock.stall t.machine.Alloc.Machine.clock wait;
      tick t
    end
  | None -> ()

let malloc t size =
  tick t;
  maybe_pause t;
  Alloc.Machine.charge t.machine boehm_malloc_surcharge;
  Alloc.Jemalloc.malloc t.je size

let free t addr =
  tick t;
  Alloc.Machine.charge t.machine boehm_free_surcharge;
  if not (Quarantine.contains t.quarantine addr) then begin
    let usable = Alloc.Jemalloc.usable_size t.je addr in
    let e = { Quarantine.addr; usable; unmapped_len = 0; failures = 0 } in
    (match covered_pages ~addr ~len:usable with
    | Some (lo, len) ->
      Vmem.decommit (mem t) ~addr:lo ~len;
      Vmem.protect (mem t) ~addr:lo ~len Vmem.No_access;
      Alloc.Machine.charge t.machine (2 * (cost t).Sim.Cost.syscall);
      e.Quarantine.unmapped_len <- len
    | None -> ());
    Quarantine.push t.quarantine ~thread:0 e;
    maybe_sweep t
  end

let is_quarantined t addr = Quarantine.contains t.quarantine addr
let jemalloc t = t.je
let sweeps t = t.sweeps
let failed_frees t = t.failed
let quarantine_bytes t = Quarantine.total_bytes t.quarantine
let marked_visited_bytes t = t.visited_bytes
