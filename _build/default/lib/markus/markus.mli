(** MarkUs baseline (Ainsworth & Jones, S&P 2020), reimplemented on the
    simulated substrate for head-to-head comparison.

    MarkUs quarantines programmer frees like MineSweeper, but decides
    safety with a *transitive* conservative marking pass in the style of
    the Boehm collector: starting from the roots (stack and globals), it
    chases pointers through reachable objects and keeps any reachable
    quarantined allocation. MineSweeper's thesis is that the transitive
    traversal (pointer-chasing, cache-hostile) is the expensive part and
    a flat linear sweep plus zeroing achieves the same protection more
    cheaply — this module is the other side of that comparison.

    Differences from MineSweeper reproduced here:
    - 25 % quarantine/heap sweep threshold (vs 15 %);
    - no zero-filling of freed data (reachability handles cycles);
    - transitive mark cost per visited byte, not linear sweep cost;
    - mostly-concurrent marking with a stop-the-world re-scan;
    - a slower, GC-oriented allocator (flat per-operation surcharge
      standing in for Boehm's allocation path);
    - page unmapping of large quarantined allocations (shared trait). *)

type t

val create :
  ?threshold:float -> ?helpers:int -> Alloc.Machine.t -> t

val malloc : t -> int -> int
val free : t -> int -> unit
val tick : t -> unit
val drain : t -> unit

val is_quarantined : t -> int -> bool
val jemalloc : t -> Alloc.Jemalloc.t

val sweeps : t -> int
val failed_frees : t -> int
val quarantine_bytes : t -> int
val marked_visited_bytes : t -> int
(** Bytes traversed by marking across the whole run (cost driver). *)
