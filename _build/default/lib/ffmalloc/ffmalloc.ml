let page = Vmem.page_size

(* FFmalloc serves requests below this from shared per-size pools; larger
   requests get dedicated pages (the original uses the same 2 KiB
   boundary). *)
let pool_max = 2048
let chunk_pages = 256 (* map address space 1 MiB at a time *)
let malloc_cycles = 15
let free_cycles = 20

(* FFmalloc coalesces page releases into batched munmap calls; charge a
   fraction of a syscall per released page. *)
let unmap_batch = 8

type pool = {
  mutable current : int; (* page base being filled, 0 if none *)
  mutable offset : int;
}

type t = {
  machine : Alloc.Machine.t;
  pools : pool array; (* one per 16-byte-rounded size up to pool_max *)
  page_live : (int, int) Hashtbl.t; (* page index -> live objects *)
  open_pages : (int, unit) Hashtbl.t; (* pages still being bump-filled *)
  live : (int, int) Hashtbl.t; (* allocation base -> usable size *)
  large : (int, int) Hashtbl.t; (* allocation base -> pages *)
  mutable brk : int;
  mutable chunk_limit : int; (* end of the currently mapped chunk *)
  mutable live_bytes : int;
}

let create machine =
  {
    machine;
    pools = Array.init (pool_max / 16) (fun _ -> { current = 0; offset = 0 });
    page_live = Hashtbl.create 4096;
    open_pages = Hashtbl.create 64;
    live = Hashtbl.create 4096;
    large = Hashtbl.create 256;
    brk = Layout.heap_base;
    chunk_limit = Layout.heap_base;
    live_bytes = 0;
  }

let mem t = t.machine.Alloc.Machine.mem
let cost t = t.machine.Alloc.Machine.cost

let take_pages t n =
  (* Strictly increasing addresses; map in whole chunks to amortise the
     mmap syscall. *)
  if t.brk + (n * page) > t.chunk_limit then begin
    let need = t.brk + (n * page) - t.chunk_limit in
    let chunk = (need + (chunk_pages * page) - 1) / (chunk_pages * page) in
    let len = chunk * chunk_pages * page in
    Vmem.map (mem t) ~addr:t.chunk_limit ~len;
    Alloc.Machine.charge t.machine (cost t).Sim.Cost.syscall;
    t.chunk_limit <- t.chunk_limit + len
  end;
  let base = t.brk in
  t.brk <- t.brk + (n * page);
  base

let retire_page t base =
  Hashtbl.remove t.open_pages (base / page);
  (* A page whose objects all died while it was still open is released
     now that no more can land on it. *)
  if Hashtbl.find_opt t.page_live (base / page) = Some 0 then begin
    Hashtbl.remove t.page_live (base / page);
    Vmem.unmap (mem t) ~addr:base ~len:page;
    Alloc.Machine.charge t.machine ((cost t).Sim.Cost.syscall / unmap_batch)
  end

let malloc_pool t size =
  let rounded = (size + 15) / 16 * 16 in
  let pool = t.pools.((rounded / 16) - 1) in
  if pool.current = 0 || pool.offset + rounded > page then begin
    if pool.current <> 0 then retire_page t pool.current;
    pool.current <- take_pages t 1;
    pool.offset <- 0;
    Hashtbl.replace t.open_pages (pool.current / page) ();
    Hashtbl.replace t.page_live (pool.current / page) 0
  end;
  let addr = pool.current + pool.offset in
  pool.offset <- pool.offset + rounded;
  let idx = pool.current / page in
  Hashtbl.replace t.page_live idx (Hashtbl.find t.page_live idx + 1);
  (addr, rounded)

let malloc t size =
  assert (size >= 0);
  let size = max 1 size in
  Alloc.Machine.charge t.machine malloc_cycles;
  let addr, usable =
    if size <= pool_max then malloc_pool t size
    else begin
      let pages = (size + page - 1) / page in
      let addr = take_pages t pages in
      Hashtbl.replace t.large addr pages;
      (addr, pages * page)
    end
  in
  (* Fresh pages arrive zeroed from the OS; only charge the application's
     initialising writes. *)
  Alloc.Machine.charge_bytes t.machine (cost t).Sim.Cost.touch_per_byte usable;
  Hashtbl.replace t.live addr usable;
  t.live_bytes <- t.live_bytes + usable;
  addr

let free t addr =
  Alloc.Machine.charge t.machine free_cycles;
  let usable =
    match Hashtbl.find_opt t.live addr with
    | Some u -> u
    | None -> invalid_arg "Ffmalloc.free: not a live allocation"
  in
  Hashtbl.remove t.live addr;
  t.live_bytes <- t.live_bytes - usable;
  match Hashtbl.find_opt t.large addr with
  | Some pages ->
    Hashtbl.remove t.large addr;
    Vmem.unmap (mem t) ~addr ~len:(pages * page);
    Alloc.Machine.charge t.machine (cost t).Sim.Cost.syscall
  | None ->
    let idx = addr / page in
    let remaining = Hashtbl.find t.page_live idx - 1 in
    Hashtbl.replace t.page_live idx remaining;
    assert (remaining >= 0);
    if remaining = 0 && not (Hashtbl.mem t.open_pages idx) then begin
      (* Last object on a retired page: return it to the OS forever. *)
      Hashtbl.remove t.page_live idx;
      Vmem.unmap (mem t) ~addr:(idx * page) ~len:page;
      Alloc.Machine.charge t.machine ((cost t).Sim.Cost.syscall / unmap_batch)
    end

let usable_size t addr =
  match Hashtbl.find_opt t.live addr with
  | Some u -> u
  | None -> invalid_arg "Ffmalloc.usable_size: not a live allocation"

let live_bytes t = t.live_bytes
let live_allocations t = Hashtbl.length t.live

let is_freed_address t addr =
  addr >= Layout.heap_base && addr < t.brk && not (Hashtbl.mem t.live addr)

let va_consumed t = t.brk - Layout.heap_base
