(** FFmalloc baseline (Wickman et al., USENIX Security 2021): a one-time
    allocator.

    Virtual addresses are handed out in strictly increasing order and
    never reused, so a dangling pointer can never alias a newer
    allocation. Physical pages are released once every object on them
    has been freed. The design trades address-space and fragmentation
    for a very cheap allocation path — its signature behaviours in the
    paper (lowest slowdown; memory blow-up on workloads whose long-lived
    objects pin mostly-dead pages; monotonically climbing RSS, Figure 8)
    all emerge from exactly those two rules. *)

type t

val create : Alloc.Machine.t -> t

val malloc : t -> int -> int
val free : t -> int -> unit

val usable_size : t -> int -> int
val live_bytes : t -> int
val live_allocations : t -> int

val is_freed_address : t -> int -> bool
(** Whether the address belonged to an allocation that has been freed.
    FFmalloc guarantees such an address is never served again. *)

val va_consumed : t -> int
(** Address space consumed so far (monotone). *)
