(** Plain-text table rendering for the benchmark reports. *)

type t

val create : columns:string list -> t
(** First column is the row label. *)

val add_row : t -> string -> float list -> unit
(** Values are rendered with three decimals (one decimal above 10). *)

val add_text_row : t -> string -> string list -> unit

val render : t -> string
(** Aligned, ready to print. *)
