(** ASCII charts for terminal reproduction of the paper's figures. *)

val bars :
  ?width:int -> ?baseline:float -> (string * float) list -> string
(** Horizontal bar chart of ratios; [baseline] (default 1.0) draws the
    no-overhead reference. *)

val grouped_bars :
  ?width:int -> series:string list -> (string * float list) list -> string
(** One group of bars per row (a benchmark), one bar per series (a
    scheme) — the layout of Figures 7, 9, 10, 18, 19. *)

val line :
  ?width:int -> ?height:int ->
  series:(string * (float * float) array) list -> unit -> string
(** Overlaid x/y line plots (Figure 8: memory over normalised time). *)
