type cve_year = {
  year : int;
  uaf_count : int;
  proportion_percent : float;
}

(* Figure 1a: CWE-415/416 reports per year in the NVD. *)
let nvd_uaf =
  [
    { year = 2012; uaf_count = 130; proportion_percent = 2.5 };
    { year = 2013; uaf_count = 140; proportion_percent = 2.7 };
    { year = 2014; uaf_count = 160; proportion_percent = 2.0 };
    { year = 2015; uaf_count = 265; proportion_percent = 3.3 };
    { year = 2016; uaf_count = 320; proportion_percent = 3.2 };
    { year = 2017; uaf_count = 345; proportion_percent = 2.3 };
    { year = 2018; uaf_count = 400; proportion_percent = 2.4 };
    { year = 2019; uaf_count = 560; proportion_percent = 3.2 };
  ]

(* Figure 1b: use-after-frees in the Linux kernel. *)
let linux_uaf =
  [
    { year = 2016; uaf_count = 8; proportion_percent = 3.7 };
    { year = 2017; uaf_count = 12; proportion_percent = 2.7 };
    { year = 2018; uaf_count = 17; proportion_percent = 9.6 };
    { year = 2019; uaf_count = 27; proportion_percent = 15.9 };
  ]

let quoted_schemes = [ "Oscar"; "DangSan"; "pSweeper-1s"; "CRCount" ]

(* Digitised from Figure 7. `None` where the original paper did not
   report the benchmark. *)
let slowdowns =
  [
    ( "Oscar",
      [
        ("astar", 1.08); ("bzip2", 1.01); ("dealII", 1.15); ("gcc", 1.40);
        ("gobmk", 1.03); ("h264ref", 1.05); ("hmmer", 1.01); ("lbm", 1.01);
        ("libquantum", 1.02); ("mcf", 1.05); ("milc", 1.10); ("namd", 1.01);
        ("omnetpp", 1.55); ("perlbench", 2.90); ("povray", 1.10);
        ("sjeng", 1.01); ("sphinx3", 1.15); ("soplex", 1.05);
        ("xalancbmk", 1.65);
      ] );
    ( "DangSan",
      [
        ("astar", 1.12); ("bzip2", 1.02); ("dealII", 1.30); ("gcc", 1.60);
        ("gobmk", 1.05); ("h264ref", 1.05); ("hmmer", 1.02); ("lbm", 1.01);
        ("libquantum", 1.02); ("mcf", 1.05); ("milc", 1.08); ("namd", 1.02);
        ("omnetpp", 2.20); ("perlbench", 4.60); ("povray", 1.30);
        ("sjeng", 1.02); ("sphinx3", 1.18); ("soplex", 1.10);
        ("xalancbmk", 2.10);
      ] );
    ( "pSweeper-1s",
      [
        ("astar", 1.10); ("bzip2", 1.02); ("dealII", 1.28); ("gcc", 1.50);
        ("gobmk", 1.04); ("h264ref", 1.04); ("hmmer", 1.02); ("lbm", 1.02);
        ("libquantum", 1.02); ("mcf", 1.25); ("milc", 1.08); ("namd", 1.02);
        ("omnetpp", 1.70); ("perlbench", 4.20); ("povray", 1.25);
        ("sjeng", 1.02); ("sphinx3", 1.20); ("soplex", 1.08);
        ("xalancbmk", 1.90);
      ] );
    ( "CRCount",
      [
        ("astar", 1.08); ("bzip2", 1.02); ("dealII", 1.18); ("gcc", 1.35);
        ("gobmk", 1.04); ("h264ref", 1.04); ("hmmer", 1.02); ("lbm", 1.02);
        ("libquantum", 1.02); ("mcf", 1.25); ("milc", 1.06); ("namd", 1.02);
        ("omnetpp", 1.30); ("perlbench", 4.10); ("povray", 1.22);
        ("sjeng", 1.02); ("sphinx3", 1.12); ("soplex", 1.06);
        ("xalancbmk", 1.40);
      ] );
  ]

(* Digitised from Figure 10 (average memory overhead). *)
let memory_overheads =
  [
    ( "Oscar",
      [
        ("astar", 1.10); ("bzip2", 1.02); ("dealII", 1.15); ("gcc", 1.60);
        ("gobmk", 1.05); ("h264ref", 1.08); ("hmmer", 1.05); ("lbm", 1.01);
        ("libquantum", 1.02); ("mcf", 1.05); ("milc", 1.10); ("namd", 1.02);
        ("omnetpp", 1.45); ("perlbench", 6.50); ("povray", 1.15);
        ("sjeng", 1.02); ("sphinx3", 1.25); ("soplex", 1.10);
        ("xalancbmk", 1.70);
      ] );
    ( "DangSan",
      [
        ("astar", 1.80); ("bzip2", 1.10); ("dealII", 2.80); ("gcc", 22.0);
        ("gobmk", 1.30); ("h264ref", 1.40); ("hmmer", 1.20); ("lbm", 1.05);
        ("libquantum", 1.10); ("mcf", 1.30); ("milc", 1.40); ("namd", 1.15);
        ("omnetpp", 4.20); ("perlbench", 135.0); ("povray", 1.80);
        ("sjeng", 1.10); ("sphinx3", 1.90); ("soplex", 1.40);
        ("xalancbmk", 3.50);
      ] );
    ( "pSweeper-1s",
      [
        ("astar", 1.40); ("bzip2", 1.08); ("dealII", 1.90); ("gcc", 2.60);
        ("gobmk", 1.15); ("h264ref", 1.20); ("hmmer", 1.10); ("lbm", 1.04);
        ("libquantum", 1.08); ("mcf", 1.30); ("milc", 1.25); ("namd", 1.08);
        ("omnetpp", 2.40); ("perlbench", 9.00); ("povray", 1.45);
        ("sjeng", 1.06); ("sphinx3", 1.50); ("soplex", 1.25);
        ("xalancbmk", 2.20);
      ] );
    ( "CRCount",
      [
        ("astar", 1.25); ("bzip2", 1.05); ("dealII", 1.50); ("gcc", 1.90);
        ("gobmk", 1.10); ("h264ref", 1.15); ("hmmer", 1.08); ("lbm", 1.03);
        ("libquantum", 1.05); ("mcf", 1.20); ("milc", 1.18); ("namd", 1.05);
        ("omnetpp", 1.80); ("perlbench", 3.50); ("povray", 1.30);
        ("sjeng", 1.05); ("sphinx3", 1.35); ("soplex", 1.18);
        ("xalancbmk", 1.90);
      ] );
  ]

let lookup table ~scheme ~bench =
  Option.bind (List.assoc_opt scheme table) (List.assoc_opt bench)

let slowdown ~scheme ~bench = lookup slowdowns ~scheme ~bench
let memory_overhead ~scheme ~bench = lookup memory_overheads ~scheme ~bench
