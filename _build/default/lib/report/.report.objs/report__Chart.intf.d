lib/report/chart.mli:
