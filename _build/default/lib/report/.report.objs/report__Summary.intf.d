lib/report/summary.mli: Format
