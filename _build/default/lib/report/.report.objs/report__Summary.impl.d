lib/report/summary.ml: Float Format List
