lib/report/literature.ml: List Option
