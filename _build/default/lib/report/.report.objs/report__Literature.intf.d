lib/report/literature.mli:
