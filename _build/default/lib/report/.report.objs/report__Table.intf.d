lib/report/table.mli:
