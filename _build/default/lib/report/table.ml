type t = {
  columns : string list;
  mutable rows : (string * string list) list; (* reversed *)
}

let create ~columns = { columns; rows = [] }

let fmt_value v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3f" v

let add_row t label values =
  t.rows <- (label, List.map fmt_value values) :: t.rows

let add_text_row t label cells = t.rows <- (label, cells) :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all =
    match t.columns with
    | [] -> rows
    | label :: rest -> (label, rest) :: rows
  in
  let ncols =
    List.fold_left (fun acc (_, cells) -> max acc (List.length cells)) 0 all
  in
  let width_of_col i =
    List.fold_left
      (fun acc (_, cells) ->
        match List.nth_opt cells i with
        | Some c -> max acc (String.length c)
        | None -> acc)
      0 all
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 all
  in
  let widths = List.init ncols width_of_col in
  let buffer = Buffer.create 1024 in
  let emit (label, cells) =
    Buffer.add_string buffer (Printf.sprintf "%-*s" label_width label);
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Buffer.add_string buffer (Printf.sprintf "  %*s" w cell))
      cells;
    (* Pad missing cells so ragged rows stay aligned. *)
    Buffer.add_char buffer '\n'
  in
  List.iter emit all;
  Buffer.contents buffer
