(** Small statistics helpers shared by the benchmark reports. *)

val geomean : float list -> float
(** Geometric mean; the paper's headline aggregations. Empty list = 1. *)

val mean : float list -> float

val worst : float list -> float
(** Maximum (worst-case overhead). 1.0 on empty input. *)

val percent_overhead : float -> float
(** [percent_overhead 1.054] is [5.4]. *)

val pp_ratio : Format.formatter -> float -> unit
(** Render a ratio like the paper's figures: ["1.05"], or ["4.6"] when
    it exceeds the usual axis. *)
