let geomean = function
  | [] -> 1.0
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (logsum /. float_of_int (List.length xs))

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let worst = function
  | [] -> 1.0
  | xs -> List.fold_left Float.max neg_infinity xs

let percent_overhead r = (r -. 1.0) *. 100.0

let pp_ratio ppf r =
  if r >= 10.0 then Format.fprintf ppf "%.1f" r
  else Format.fprintf ppf "%.3f" r
