let bar_char = '#'

let bars ?(width = 50) ?(baseline = 1.0) items =
  let max_value =
    List.fold_left (fun acc (_, v) -> Float.max acc v) baseline items
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items
  in
  let buffer = Buffer.create 1024 in
  List.iter
    (fun (label, v) ->
      let cells = int_of_float (v /. max_value *. float_of_int width) in
      Buffer.add_string buffer
        (Printf.sprintf "%-*s %7.3f %s\n" label_width label v
           (String.make (max 0 cells) bar_char)))
    items;
  Buffer.contents buffer

let grouped_bars ?(width = 46) ~series items =
  let max_value =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      1.0 items
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items
    |> max
         (List.fold_left (fun acc s -> max acc (String.length s)) 0 series)
  in
  let buffer = Buffer.create 4096 in
  List.iter
    (fun (group, values) ->
      Buffer.add_string buffer (Printf.sprintf "%s\n" group);
      List.iteri
        (fun i v ->
          let name = try List.nth series i with Failure _ -> "?" in
          let cells = int_of_float (v /. max_value *. float_of_int width) in
          Buffer.add_string buffer
            (Printf.sprintf "  %-*s %7.3f %s\n" label_width name v
               (String.make (max 0 cells) bar_char)))
        values)
    items;
  Buffer.contents buffer

let line ?(width = 72) ?(height = 16) ~series () =
  let all_points = List.concat_map (fun (_, a) -> Array.to_list a) series in
  match all_points with
  | [] -> "(no data)\n"
  | _ ->
    let xmax = List.fold_left (fun acc (x, _) -> Float.max acc x) 0. all_points in
    let xmin = List.fold_left (fun acc (x, _) -> Float.min acc x) max_float all_points in
    let ymax = List.fold_left (fun acc (_, y) -> Float.max acc y) 0. all_points in
    let grid = Array.make_matrix height width ' ' in
    let glyphs = [| '*'; 'o'; '+'; 'x'; '~' |] in
    List.iteri
      (fun si (_, points) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iter
          (fun (x, y) ->
            let xr = if xmax = xmin then 0. else (x -. xmin) /. (xmax -. xmin) in
            let col = min (width - 1) (int_of_float (xr *. float_of_int (width - 1))) in
            let yr = if ymax = 0. then 0. else y /. ymax in
            let row =
              height - 1 - min (height - 1) (int_of_float (yr *. float_of_int (height - 1)))
            in
            grid.(row).(col) <- glyph)
          points)
      series;
    let buffer = Buffer.create 4096 in
    Buffer.add_string buffer (Printf.sprintf "ymax = %.2f\n" ymax);
    Array.iter
      (fun row ->
        Buffer.add_string buffer "|";
        Array.iter (Buffer.add_char buffer) row;
        Buffer.add_char buffer '\n')
      grid;
    Buffer.add_string buffer ("+" ^ String.make width '-' ^ "\n");
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buffer
          (Printf.sprintf "  %c = %s\n" glyphs.(si mod Array.length glyphs) name))
      series;
    Buffer.contents buffer
