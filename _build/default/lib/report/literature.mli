(** Published data points quoted by the paper.

    Two kinds of series live here:
    - Figure 1's vulnerability counts (National Vulnerability Database);
    - the per-benchmark overheads of Oscar, DangSan, pSweeper-1s and
      CRCount, which the paper itself quotes from those systems' papers
      rather than re-running (Section 5.1). Values are digitised from
      Figures 7 and 10 and are approximate by nature; they exist so the
      comparison figures can be regenerated in full. *)

type cve_year = {
  year : int;
  uaf_count : int;
  proportion_percent : float;
}

val nvd_uaf : cve_year list
(** CWE-415/416 reports in the NVD, 2012-2019 (Figure 1a). *)

val linux_uaf : cve_year list
(** Use-after-free vulnerabilities in the Linux kernel (Figure 1b). *)

val quoted_schemes : string list
(** ["Oscar"; "DangSan"; "pSweeper-1s"; "CRCount"] in figure order. *)

val slowdown : scheme:string -> bench:string -> float option
(** Digitised Figure 7 value, if that paper reported the benchmark. *)

val memory_overhead : scheme:string -> bench:string -> float option
(** Digitised Figure 10 value. *)
