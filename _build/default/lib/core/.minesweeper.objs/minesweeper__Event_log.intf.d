lib/core/event_log.mli: Format
