lib/core/minesweeper.ml: Config Event_log Instance Quarantine Shadow Stats
