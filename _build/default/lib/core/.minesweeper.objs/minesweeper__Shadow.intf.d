lib/core/shadow.mli:
