lib/core/quarantine.mli: Alloc
