lib/core/instance.ml: Alloc Bytes Config Event_log Hashtbl Instance_intf Int64 Layout List Logs Quarantine Shadow Sim Stats Vmem
