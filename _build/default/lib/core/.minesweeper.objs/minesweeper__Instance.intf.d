lib/core/instance.mli: Alloc Instance_intf
