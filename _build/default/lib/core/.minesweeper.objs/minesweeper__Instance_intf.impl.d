lib/core/instance_intf.ml: Alloc Config Event_log Stats
