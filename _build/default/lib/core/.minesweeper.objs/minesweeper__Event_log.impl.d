lib/core/event_log.ml: Array Format List
