lib/core/quarantine.ml: Alloc Array Hashtbl List Sim
