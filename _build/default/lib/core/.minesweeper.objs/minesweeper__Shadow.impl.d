lib/core/shadow.ml: Bytes Char Hashtbl Layout Vmem
