(** Counters published by a MineSweeper instance. *)

type t = {
  mutable frees_intercepted : int;
  mutable double_frees : int;
  mutable sweeps : int;
  mutable swept_bytes : int;  (** memory scanned across all marking phases *)
  mutable releases : int;  (** allocations recycled after a clean sweep *)
  mutable released_bytes : int;
  mutable failed_frees : int;  (** release attempts blocked by a mark *)
  mutable unmapped_allocations : int;
  mutable unmapped_bytes : int;
  mutable stw_pauses : int;
  mutable stw_cycles : int;
  mutable alloc_pauses : int;
  mutable alloc_pause_cycles : int;
  mutable peak_quarantine_bytes : int;
  mutable uaf_prevented : int;
      (** accesses to quarantined memory observed by the checker *)
}

val create : unit -> t
val pp : Format.formatter -> t -> unit
