type event =
  | Free_intercepted of { addr : int; usable : int }
  | Double_free of { addr : int }
  | Unmapped of { addr : int; len : int }
  | Sweep_started of { sweep : int; quarantined_bytes : int }
  | Sweep_finished of { sweep : int; released : int; failed : int }
  | Stop_the_world of { cycles : int }
  | Allocation_paused of { cycles : int }

type t = {
  ring : (int * event) option array;
  mutable next : int;
  mutable recorded : int;
}

let create ?(capacity = 1024) () =
  assert (capacity > 0);
  { ring = Array.make capacity None; next = 0; recorded = 0 }

let record t ~now event =
  t.ring.(t.next) <- Some (now, event);
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.recorded <- t.recorded + 1

let events t =
  let n = Array.length t.ring in
  let rec collect i acc =
    if i = n then List.rev acc
    else
      let idx = (t.next + i) mod n in
      collect (i + 1)
        (match t.ring.(idx) with Some e -> e :: acc | None -> acc)
  in
  collect 0 []

let recorded t = t.recorded

let pp_event ppf = function
  | Free_intercepted { addr; usable } ->
    Format.fprintf ppf "free %#x (%d B) -> quarantine" addr usable
  | Double_free { addr } -> Format.fprintf ppf "double free %#x (absorbed)" addr
  | Unmapped { addr; len } ->
    Format.fprintf ppf "unmapped %d B of quarantined pages at %#x" len addr
  | Sweep_started { sweep; quarantined_bytes } ->
    Format.fprintf ppf "sweep #%d started (%d B quarantined)" sweep
      quarantined_bytes
  | Sweep_finished { sweep; released; failed } ->
    Format.fprintf ppf "sweep #%d finished: released %d, failed %d" sweep
      released failed
  | Stop_the_world { cycles } ->
    Format.fprintf ppf "stop-the-world re-scan (%d cycles)" cycles
  | Allocation_paused { cycles } ->
    Format.fprintf ppf "allocation paused %d cycles (sweep lagging)" cycles

let dump ppf t =
  List.iter
    (fun (now, event) -> Format.fprintf ppf "[%12d] %a@." now pp_event event)
    (events t)
