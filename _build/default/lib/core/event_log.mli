(** Bounded in-memory event log for a MineSweeper instance.

    The production analogue is the debug/telemetry channel an operator
    would tail when deploying a drop-in mitigation: what was quarantined,
    when sweeps ran and what they recycled, where pauses came from.
    Recording is allocation-light (a fixed ring buffer) so it can stay on
    in production configurations; the newest [capacity] events win. *)

type event =
  | Free_intercepted of { addr : int; usable : int }
  | Double_free of { addr : int }
  | Unmapped of { addr : int; len : int }
  | Sweep_started of { sweep : int; quarantined_bytes : int }
  | Sweep_finished of { sweep : int; released : int; failed : int }
  | Stop_the_world of { cycles : int }
  | Allocation_paused of { cycles : int }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 1024 events. *)

val record : t -> now:int -> event -> unit

val events : t -> (int * event) list
(** Retained events, oldest first, each with its wall-cycle timestamp. *)

val recorded : t -> int
(** Total events ever recorded (≥ retained count once the ring wraps). *)

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> t -> unit
(** Human-readable listing of the retained window. *)
