type t =
  | Constant of int
  | Uniform of int * int
  | Exponential of float
  | Pareto of float * int * int
  | Choice of (float * t) array * float (* branches, total weight *)
  | Shifted of int * t

let constant n = Constant n

let uniform ~lo ~hi =
  assert (lo <= hi);
  Uniform (lo, hi)

let exponential ~mean =
  assert (mean > 0.);
  Exponential mean

let pareto ~shape ~scale ~cap =
  assert (shape > 0. && scale > 0 && cap >= scale);
  Pareto (shape, scale, cap)

let choice branches =
  let branches = Array.of_list branches in
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0. branches in
  assert (total > 0.);
  Choice (branches, total)

let shifted k d = Shifted (k, d)

let rec sample t rng =
  match t with
  | Constant n -> n
  | Uniform (lo, hi) -> lo + Rng.int rng (hi - lo + 1)
  | Exponential mean ->
    let u = 1.0 -. Rng.float rng 1.0 in
    max 1 (int_of_float (-.mean *. log u))
  | Pareto (shape, scale, cap) ->
    let u = 1.0 -. Rng.float rng 1.0 in
    let x = float_of_int scale /. (u ** (1.0 /. shape)) in
    min cap (int_of_float x)
  | Choice (branches, total) ->
    let x = Rng.float rng total in
    let rec pick i acc =
      let w, d = branches.(i) in
      if x < acc +. w || i = Array.length branches - 1 then d
      else pick (i + 1) (acc +. w)
    in
    sample (pick 0 0.) rng
  | Shifted (k, d) -> k + sample d rng

let rec mean_estimate = function
  | Constant n -> float_of_int n
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.0
  | Exponential mean -> mean
  | Pareto (shape, scale, cap) ->
    if shape > 1.0 then
      let m = shape *. float_of_int scale /. (shape -. 1.0) in
      Float.min m (float_of_int cap)
    else float_of_int cap /. 2.0
  | Choice (branches, total) ->
    Array.fold_left
      (fun acc (w, d) -> acc +. (w /. total *. mean_estimate d))
      0. branches
  | Shifted (k, d) -> float_of_int k +. mean_estimate d
