(** Simulated time and CPU accounting.

    The simulation is logically sequential, but cycles are attributed to
    either the application thread(s) or background (sweeper) threads.
    Wall-clock time is the application timeline: application work and
    stalls (stop-the-world pauses, allocation pauses) advance it, while
    background work only accumulates busy cycles. This reproduces the
    paper's three reported axes: slowdown (wall ratio), CPU-utilisation
    overhead (busy / wall) and lets concurrent sweeps overlap the
    application for free except where they stall it. *)

type t

val create : unit -> t

val advance : t -> int -> unit
(** Application work: advances wall time and application busy cycles. *)

val stall : t -> int -> unit
(** Application blocked (stop-the-world, allocation pause): advances wall
    time only. *)

val background : t -> int -> unit
(** Busy cycles on a background thread; wall time is unaffected. *)

val now : t -> int
(** Current wall-clock position in cycles. *)

val wall : t -> int
(** Synonym of {!now}, for end-of-run reporting. *)

val app_busy : t -> int
val background_busy : t -> int
val stalled : t -> int

val cpu_utilisation : t -> float
(** (application busy + background busy) / wall; 1.0 for an unprotected
    single-threaded run. *)
