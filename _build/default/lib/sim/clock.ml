type t = {
  mutable app : int;
  mutable stalls : int;
  mutable bg : int;
}

let create () = { app = 0; stalls = 0; bg = 0 }

let advance t n =
  assert (n >= 0);
  t.app <- t.app + n

let stall t n =
  assert (n >= 0);
  t.stalls <- t.stalls + n

let background t n =
  assert (n >= 0);
  t.bg <- t.bg + n

let now t = t.app + t.stalls
let wall = now
let app_busy t = t.app
let background_busy t = t.bg
let stalled t = t.stalls

let cpu_utilisation t =
  let w = now t in
  if w = 0 then 1.0 else float_of_int (t.app + t.bg) /. float_of_int w
