lib/sim/clock.ml:
