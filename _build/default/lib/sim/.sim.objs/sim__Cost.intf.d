lib/sim/cost.mli:
