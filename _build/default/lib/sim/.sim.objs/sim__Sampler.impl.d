lib/sim/sampler.ml: Array
