lib/sim/sampler.mli:
