lib/sim/cost.ml:
