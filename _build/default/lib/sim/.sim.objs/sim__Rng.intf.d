lib/sim/rng.mli:
