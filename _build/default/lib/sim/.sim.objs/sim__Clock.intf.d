lib/sim/clock.mli:
