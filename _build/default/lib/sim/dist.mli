(** Random-variate distributions used by the workload generators.

    A distribution is a value of type {!t}; sampling always goes through a
    {!Rng.t} so results stay deterministic. *)

type t

val constant : int -> t
(** Always returns the same value. *)

val uniform : lo:int -> hi:int -> t
(** Uniform over the inclusive range [\[lo, hi\]]. *)

val exponential : mean:float -> t
(** Exponential with the given mean, rounded to int, minimum 1. *)

val pareto : shape:float -> scale:int -> cap:int -> t
(** Bounded Pareto: heavy-tailed sizes/lifetimes, truncated at [cap]. *)

val choice : (float * t) list -> t
(** Mixture distribution: pick a branch with the given weights (weights
    need not sum to one; they are normalised). *)

val shifted : int -> t -> t
(** [shifted k d] samples [d] and adds [k]. *)

val sample : t -> Rng.t -> int
(** Draw one variate. Results are always [>= 0] for the built-in
    constructors with non-negative parameters. *)

val mean_estimate : t -> float
(** Analytic or approximate mean, used for sizing simulations a priori. *)
