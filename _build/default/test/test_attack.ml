(* Exploit-scenario tests: the security claims of Section 1.2. *)

let fresh scheme =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  Workloads.Harness.build scheme ~threads:1 machine

let baseline () = fresh Workloads.Harness.Baseline
let minesweeper () = fresh (Workloads.Harness.Mine_sweeper Minesweeper.Config.default)
let mostly () =
  fresh (Workloads.Harness.Mine_sweeper Minesweeper.Config.mostly_concurrent)
let markus () = fresh Workloads.Harness.Mark_us
let ffmalloc () = fresh Workloads.Harness.Ff_malloc

let check_outcome name expected actual =
  Alcotest.(check string) name
    (Attack.describe expected)
    (Attack.describe actual)

let test_baseline_exploited () =
  check_outcome "unprotected JeMalloc falls to the spray" Attack.Exploited
    (Attack.vtable_hijack (baseline ()))

let test_minesweeper_protects () =
  match Attack.vtable_hijack (minesweeper ()) with
  | Attack.Exploited -> Alcotest.fail "MineSweeper must prevent the hijack"
  | Attack.Benign | Attack.Prevented_fault -> ()

let test_mostly_concurrent_protects () =
  match Attack.vtable_hijack (mostly ()) with
  | Attack.Exploited -> Alcotest.fail "mostly concurrent must prevent too"
  | Attack.Benign | Attack.Prevented_fault -> ()

let test_markus_protects () =
  match Attack.vtable_hijack (markus ()) with
  | Attack.Exploited -> Alcotest.fail "MarkUs must prevent the hijack"
  | Attack.Benign | Attack.Prevented_fault -> ()

let test_ffmalloc_protects () =
  match Attack.vtable_hijack (ffmalloc ()) with
  | Attack.Exploited -> Alcotest.fail "FFmalloc must prevent the hijack"
  | Attack.Benign | Attack.Prevented_fault -> ()

let test_double_free_does_not_help_attacker () =
  match Attack.double_free_hijack (minesweeper ()) with
  | Attack.Exploited -> Alcotest.fail "double free must not bypass quarantine"
  | Attack.Benign | Attack.Prevented_fault -> ()

let test_bigger_spray_still_fails () =
  match Attack.vtable_hijack ~spray:20_000 (minesweeper ()) with
  | Attack.Exploited -> Alcotest.fail "spray size must not matter"
  | Attack.Benign | Attack.Prevented_fault -> ()

let test_reuse_after_clear_semantics () =
  Alcotest.(check bool) "baseline recycles" true
    (Attack.reuse_after_clear (baseline ()));
  Alcotest.(check bool) "minesweeper recycles once safe" true
    (Attack.reuse_after_clear (minesweeper ()));
  Alcotest.(check bool) "markus recycles once safe" true
    (Attack.reuse_after_clear (markus ()));
  Alcotest.(check bool) "ffmalloc never recycles" false
    (Attack.reuse_after_clear ~churn:30_000 (ffmalloc ()))

let test_describe_strings_distinct () =
  let all = [ Attack.Exploited; Attack.Prevented_fault; Attack.Benign ] in
  let described = List.map Attack.describe all in
  Alcotest.(check int) "distinct descriptions" 3
    (List.length (List.sort_uniq compare described))

let suite =
  ( "attack",
    [
      Alcotest.test_case "baseline exploited" `Quick test_baseline_exploited;
      Alcotest.test_case "minesweeper protects" `Quick test_minesweeper_protects;
      Alcotest.test_case "mostly concurrent protects" `Quick
        test_mostly_concurrent_protects;
      Alcotest.test_case "markus protects" `Quick test_markus_protects;
      Alcotest.test_case "ffmalloc protects" `Quick test_ffmalloc_protects;
      Alcotest.test_case "double free no bypass" `Quick
        test_double_free_does_not_help_attacker;
      Alcotest.test_case "bigger spray still fails" `Quick
        test_bigger_spray_still_fails;
      Alcotest.test_case "reuse-after-clear semantics" `Quick
        test_reuse_after_clear_semantics;
      Alcotest.test_case "describe distinct" `Quick test_describe_strings_distinct;
    ] )
