(* Workload profiles + trace driver integration tests. *)

let tiny_profile ?(ops = 4000) ?(threads = 1) () =
  Workloads.Profile.make ~name:"tiny" ~suite:"test" ~ops
    ~size:(Sim.Dist.uniform ~lo:16 ~hi:256)
    ~lifetime:(Sim.Dist.exponential ~mean:300.)
    ~work_per_op:200 ~threads ()

let test_profile_tables_complete () =
  Alcotest.(check int) "19 SPEC2006 benchmarks" 19
    (List.length Workloads.Spec2006.all);
  Alcotest.(check int) "18 SPEC2017 benchmarks" 18
    (List.length Workloads.Spec2017.all);
  Alcotest.(check int) "16 mimalloc-bench tests" 16
    (List.length Workloads.Mimalloc_bench.all)

let test_profile_names_unique () =
  let check_unique names =
    Alcotest.(check int) "no duplicates"
      (List.length names)
      (List.length (List.sort_uniq compare names))
  in
  check_unique Workloads.Spec2006.names;
  check_unique Workloads.Spec2017.names;
  check_unique Workloads.Mimalloc_bench.names

let test_find () =
  Alcotest.(check string) "find returns the benchmark" "xalancbmk"
    (Workloads.Spec2006.find "xalancbmk").Workloads.Profile.name;
  Alcotest.check_raises "unknown raises" Not_found (fun () ->
      ignore (Workloads.Spec2006.find "nonesuch"))

let test_threaded_flags () =
  Alcotest.(check bool) "wrf is starred" true (Workloads.Spec2017.threaded "wrf");
  Alcotest.(check bool) "xalancbmk is not" false
    (Workloads.Spec2017.threaded "xalancbmk")

let test_scale_ops () =
  let p = tiny_profile () in
  let scaled = Workloads.Profile.scale_ops 0.5 p in
  Alcotest.(check int) "ops halved" 2000 scaled.Workloads.Profile.ops;
  let floor = Workloads.Profile.scale_ops 0.0001 p in
  Alcotest.(check int) "ops floored" 1000 floor.Workloads.Profile.ops

let test_driver_deterministic () =
  let p = tiny_profile () in
  let r1 = Workloads.Driver.run p Workloads.Harness.Baseline in
  let r2 = Workloads.Driver.run p Workloads.Harness.Baseline in
  Alcotest.(check int) "same wall" r1.Workloads.Driver.wall
    r2.Workloads.Driver.wall;
  Alcotest.(check int) "same peak rss" r1.Workloads.Driver.peak_rss
    r2.Workloads.Driver.peak_rss;
  Alcotest.(check int) "same frees" r1.Workloads.Driver.frees
    r2.Workloads.Driver.frees

let test_driver_all_schemes_complete () =
  let p = tiny_profile () in
  List.iter
    (fun scheme ->
      let r = Workloads.Driver.run p scheme in
      Alcotest.(check int) "all allocations performed" 4000
        r.Workloads.Driver.allocations;
      Alcotest.(check bool) "some frees happened" true
        (r.Workloads.Driver.frees > 1000);
      Alcotest.(check bool) "positive wall time" true (r.Workloads.Driver.wall > 0);
      Alcotest.(check bool) "rss trace recorded" true
        (Array.length r.Workloads.Driver.rss_trace > 10))
    [
      Workloads.Harness.Baseline;
      Workloads.Harness.Mine_sweeper Minesweeper.Config.default;
      Workloads.Harness.Mine_sweeper Minesweeper.Config.mostly_concurrent;
      Workloads.Harness.Mark_us;
      Workloads.Harness.Ff_malloc;
    ]

let test_protected_runs_cost_more () =
  let p = tiny_profile ~ops:20_000 () in
  let baseline = Workloads.Driver.run p Workloads.Harness.Baseline in
  let ms =
    Workloads.Driver.run p
      (Workloads.Harness.Mine_sweeper Minesweeper.Config.default)
  in
  Alcotest.(check bool) "protection is not free" true
    (Workloads.Driver.slowdown ~baseline ms > 1.0);
  Alcotest.(check bool) "cpu utilisation rises" true
    (ms.Workloads.Driver.cpu_utilisation
    >= baseline.Workloads.Driver.cpu_utilisation)

let test_minesweeper_sweeps_under_churn () =
  let p = tiny_profile ~ops:30_000 () in
  let ms =
    Workloads.Driver.run p
      (Workloads.Harness.Mine_sweeper Minesweeper.Config.default)
  in
  Alcotest.(check bool) "sweeps happened" true (ms.Workloads.Driver.sweeps > 0)

let test_threaded_run () =
  let p = tiny_profile ~ops:8000 ~threads:8 () in
  let r =
    Workloads.Driver.run p
      (Workloads.Harness.Mine_sweeper Minesweeper.Config.default)
  in
  Alcotest.(check int) "trace completes with thread-local buffers" 8000
    r.Workloads.Driver.allocations

let test_rss_limit_kills () =
  (* An absurdly small budget: the run must stop and flag itself. *)
  let p = tiny_profile ~ops:20_000 () in
  let r =
    Workloads.Driver.run ~rss_limit:(3 * 1024 * 1024) p
      Workloads.Harness.Baseline
  in
  Alcotest.(check bool) "killed" true r.Workloads.Driver.oom_killed

let test_overhead_helpers () =
  let p = tiny_profile () in
  let baseline = Workloads.Driver.run p Workloads.Harness.Baseline in
  Alcotest.(check (float 0.0001)) "self slowdown is 1" 1.0
    (Workloads.Driver.slowdown ~baseline baseline);
  Alcotest.(check (float 0.0001)) "self memory is 1" 1.0
    (Workloads.Driver.memory_overhead ~baseline baseline)

let test_scheme_names () =
  Alcotest.(check string) "baseline" "baseline"
    (Workloads.Harness.scheme_name Workloads.Harness.Baseline);
  Alcotest.(check string) "minesweeper" "minesweeper"
    (Workloads.Harness.scheme_name
       (Workloads.Harness.Mine_sweeper Minesweeper.Config.default));
  Alcotest.(check string) "mostly" "minesweeper-mostly"
    (Workloads.Harness.scheme_name
       (Workloads.Harness.Mine_sweeper Minesweeper.Config.mostly_concurrent));
  Alcotest.(check string) "variant" "minesweeper-variant"
    (Workloads.Harness.scheme_name
       (Workloads.Harness.Mine_sweeper Minesweeper.Config.unoptimised))

let test_spec2006_live_heaps_reasonable () =
  (* Guard against profile regressions: each benchmark's implied live
     heap must stay within simulator scale. *)
  List.iter
    (fun p ->
      let mean_size = Sim.Dist.mean_estimate p.Workloads.Profile.size in
      let mean_life = Sim.Dist.mean_estimate p.Workloads.Profile.lifetime in
      let live = mean_size *. mean_life in
      Alcotest.(check bool)
        (Printf.sprintf "%s live heap %.1f MiB within [0, 64MiB]"
           p.Workloads.Profile.name
           (live /. 1048576.))
        true
        (live < 64. *. 1048576.))
    Workloads.Spec2006.all

let suite =
  ( "workloads",
    [
      Alcotest.test_case "profile tables complete" `Quick
        test_profile_tables_complete;
      Alcotest.test_case "profile names unique" `Quick test_profile_names_unique;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "threaded flags" `Quick test_threaded_flags;
      Alcotest.test_case "scale_ops" `Quick test_scale_ops;
      Alcotest.test_case "driver deterministic" `Quick test_driver_deterministic;
      Alcotest.test_case "all schemes complete" `Quick
        test_driver_all_schemes_complete;
      Alcotest.test_case "protection costs" `Quick test_protected_runs_cost_more;
      Alcotest.test_case "sweeps under churn" `Quick
        test_minesweeper_sweeps_under_churn;
      Alcotest.test_case "threaded run" `Quick test_threaded_run;
      Alcotest.test_case "rss limit kills" `Quick test_rss_limit_kills;
      Alcotest.test_case "overhead helpers" `Quick test_overhead_helpers;
      Alcotest.test_case "scheme names" `Quick test_scheme_names;
      Alcotest.test_case "live heaps reasonable" `Quick
        test_spec2006_live_heaps_reasonable;
    ] )
