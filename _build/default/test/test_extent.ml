(* Extent manager tests: reuse, coalescing, decay purging and hooks. *)

let page = Vmem.page_size

let fresh ?decay_cycles () =
  let machine = Alloc.Machine.create () in
  (machine, Alloc.Extent.create ?decay_cycles machine)

let test_alloc_is_mapped_and_zeroed () =
  let machine, e = fresh () in
  let a = Alloc.Extent.alloc e ~pages:2 in
  Alcotest.(check bool) "mapped" true
    (Vmem.is_mapped machine.Alloc.Machine.mem a);
  Alcotest.(check int) "zeroed" 0 (Vmem.load machine.Alloc.Machine.mem a);
  Alcotest.(check int) "used accounted" (2 * page)
    (Alloc.Extent.heap_used_bytes e)

let test_distinct_extents () =
  let _, e = fresh () in
  let a = Alloc.Extent.alloc e ~pages:1 in
  let b = Alloc.Extent.alloc e ~pages:1 in
  Alcotest.(check bool) "distinct" true (a <> b)

let test_reuse_after_dalloc () =
  let _, e = fresh () in
  let a = Alloc.Extent.alloc e ~pages:4 in
  Alloc.Extent.dalloc e ~addr:a ~pages:4;
  let b = Alloc.Extent.alloc e ~pages:4 in
  Alcotest.(check int) "same range reused" a b

let test_split_reuse () =
  let _, e = fresh () in
  let a = Alloc.Extent.alloc e ~pages:4 in
  Alloc.Extent.dalloc e ~addr:a ~pages:4;
  let b = Alloc.Extent.alloc e ~pages:1 in
  let c = Alloc.Extent.alloc e ~pages:3 in
  Alcotest.(check int) "front of retained" a b;
  Alcotest.(check int) "remainder next" (a + page) c

let test_coalescing () =
  let _, e = fresh () in
  let a = Alloc.Extent.alloc e ~pages:2 in
  let b = Alloc.Extent.alloc e ~pages:2 in
  Alcotest.(check int) "adjacent" (a + (2 * page)) b;
  Alloc.Extent.dalloc e ~addr:a ~pages:2;
  Alloc.Extent.dalloc e ~addr:b ~pages:2;
  (* Coalesced: a single 4-page allocation fits the merged range. *)
  let c = Alloc.Extent.alloc e ~pages:4 in
  Alcotest.(check int) "merged range reused" a c

let test_zeroed_on_reuse () =
  let machine, e = fresh () in
  let a = Alloc.Extent.alloc e ~pages:1 in
  Vmem.store machine.Alloc.Machine.mem a 999;
  Alloc.Extent.dalloc e ~addr:a ~pages:1;
  let b = Alloc.Extent.alloc e ~pages:1 in
  Alcotest.(check int) "reuse zeroed" 0 (Vmem.load machine.Alloc.Machine.mem b)

let test_decay_purge () =
  let machine, e = fresh ~decay_cycles:1000 () in
  let a = Alloc.Extent.alloc e ~pages:2 in
  Alloc.Extent.dalloc e ~addr:a ~pages:2;
  Alcotest.(check int) "dirty retained" (2 * page)
    (Alloc.Extent.retained_dirty_bytes e);
  Alloc.Extent.purge_tick e;
  Alcotest.(check int) "too young to purge" (2 * page)
    (Alloc.Extent.retained_dirty_bytes e);
  Sim.Clock.advance machine.Alloc.Machine.clock 2000;
  Alloc.Extent.purge_tick e;
  Alcotest.(check int) "purged after decay" 0
    (Alloc.Extent.retained_dirty_bytes e);
  Alcotest.(check bool) "physical backing dropped" false
    (Vmem.is_committed machine.Alloc.Machine.mem a)

let test_purge_all () =
  let machine, e = fresh () in
  let a = Alloc.Extent.alloc e ~pages:1 in
  let b = Alloc.Extent.alloc e ~pages:1 in
  Alloc.Extent.dalloc e ~addr:a ~pages:1;
  Alloc.Extent.dalloc e ~addr:b ~pages:1;
  Alloc.Extent.purge_all e;
  Alcotest.(check int) "all purged" 0 (Alloc.Extent.retained_dirty_bytes e);
  Alcotest.(check int) "retained address space kept" (2 * page)
    (Alloc.Extent.retained_bytes e);
  ignore machine

let test_hooks_fire () =
  let machine, e = fresh () in
  let decommits = ref [] and commits = ref [] in
  Alloc.Extent.set_hooks e
    {
      Alloc.Extent.on_decommit =
        (fun ~addr ~pages -> decommits := (addr, pages) :: !decommits);
      on_commit = (fun ~addr ~pages -> commits := (addr, pages) :: !commits);
    };
  let a = Alloc.Extent.alloc e ~pages:2 in
  Alloc.Extent.dalloc e ~addr:a ~pages:2;
  Alloc.Extent.purge_all e;
  Alcotest.(check (list (pair int int))) "decommit hook" [ (a, 2) ] !decommits;
  let b = Alloc.Extent.alloc e ~pages:2 in
  Alcotest.(check int) "purged range recommitted for reuse" a b;
  Alcotest.(check (list (pair int int))) "commit hook" [ (a, 2) ] !commits;
  ignore machine

let test_wilderness_monotone () =
  let _, e = fresh () in
  let w0 = Alloc.Extent.wilderness e in
  let a = Alloc.Extent.alloc e ~pages:8 in
  Alcotest.(check bool) "extent below wilderness" true
    (a + (8 * page) <= Alloc.Extent.wilderness e);
  Alcotest.(check bool) "wilderness grew" true (Alloc.Extent.wilderness e > w0);
  Alloc.Extent.dalloc e ~addr:a ~pages:8;
  ignore (Alloc.Extent.alloc e ~pages:4);
  Alcotest.(check int) "reuse does not grow wilderness"
    (w0 + (8 * page))
    (Alloc.Extent.wilderness e)

let prop_used_bytes_balanced =
  QCheck.Test.make ~name:"heap_used_bytes balances allocs and dallocs"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 1 8))
    (fun sizes ->
      let _, e = fresh () in
      let allocated =
        List.map (fun pages -> (Alloc.Extent.alloc e ~pages, pages)) sizes
      in
      List.iter
        (fun (addr, pages) -> Alloc.Extent.dalloc e ~addr ~pages)
        allocated;
      Alloc.Extent.heap_used_bytes e = 0)

let suite =
  ( "alloc.extent",
    [
      Alcotest.test_case "alloc mapped+zeroed" `Quick
        test_alloc_is_mapped_and_zeroed;
      Alcotest.test_case "distinct extents" `Quick test_distinct_extents;
      Alcotest.test_case "reuse after dalloc" `Quick test_reuse_after_dalloc;
      Alcotest.test_case "split reuse" `Quick test_split_reuse;
      Alcotest.test_case "coalescing" `Quick test_coalescing;
      Alcotest.test_case "zeroed on reuse" `Quick test_zeroed_on_reuse;
      Alcotest.test_case "decay purge" `Quick test_decay_purge;
      Alcotest.test_case "purge all" `Quick test_purge_all;
      Alcotest.test_case "hooks fire" `Quick test_hooks_fire;
      Alcotest.test_case "wilderness monotone" `Quick test_wilderness_monotone;
      QCheck_alcotest.to_alcotest prop_used_bytes_balanced;
    ] )
