test/test_quarantine.ml: Alcotest Alloc Gen List Minesweeper QCheck QCheck_alcotest
