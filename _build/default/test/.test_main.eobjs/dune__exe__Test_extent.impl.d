test/test_extent.ml: Alcotest Alloc Gen List QCheck QCheck_alcotest Sim Vmem
