test/test_model.ml: Alloc Layout List Minesweeper Printf QCheck QCheck_alcotest Vmem
