test/test_trace.ml: Alcotest Alloc Filename Fun Layout List Minesweeper Printf Sim String Sys Vmem Workloads
