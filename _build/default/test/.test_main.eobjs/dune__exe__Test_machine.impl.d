test/test_machine.ml: Alcotest Alloc Layout Sim Vmem
