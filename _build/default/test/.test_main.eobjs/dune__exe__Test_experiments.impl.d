test/test_experiments.ml: Alcotest Astring_contains Experiments List String Workloads
