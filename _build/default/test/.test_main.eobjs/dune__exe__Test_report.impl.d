test/test_report.ml: Alcotest Array Astring_contains Float Gen List Printf QCheck QCheck_alcotest Report String Workloads
