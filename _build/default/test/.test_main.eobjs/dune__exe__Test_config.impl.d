test/test_config.ml: Alcotest Astring_contains Format List Minesweeper
