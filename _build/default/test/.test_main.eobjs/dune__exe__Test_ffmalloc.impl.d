test/test_ffmalloc.ml: Alcotest Alloc Array Ffmalloc Hashtbl Layout List Printf QCheck QCheck_alcotest Sim Vmem
