test/test_workloads.ml: Alcotest Array List Minesweeper Printf Sim Workloads
