test/test_attack.ml: Alcotest Alloc Attack Layout List Minesweeper Vmem Workloads
