test/test_jemalloc.ml: Alcotest Alloc Gen Hashtbl Layout List Printf QCheck QCheck_alcotest Sim Vmem
