test/test_dist.ml: Alcotest Array Float Fun Printf QCheck QCheck_alcotest Sim
