test/test_scudo.ml: Alcotest Alloc Attack Layout List Minesweeper Sim Vmem Workloads
