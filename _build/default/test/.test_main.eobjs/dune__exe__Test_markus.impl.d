test/test_markus.ml: Alcotest Alloc Layout List Markus Vmem
