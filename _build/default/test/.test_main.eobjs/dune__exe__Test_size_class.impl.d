test/test_size_class.ml: Alcotest Alloc Printf QCheck QCheck_alcotest Vmem
