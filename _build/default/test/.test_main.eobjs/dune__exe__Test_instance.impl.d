test/test_instance.ml: Alcotest Alloc Gen Layout List Minesweeper QCheck QCheck_alcotest Sim Vmem
