test/test_vmem.ml: Alcotest Layout List QCheck QCheck_alcotest Vmem
