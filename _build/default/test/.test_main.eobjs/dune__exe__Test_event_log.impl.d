test/test_event_log.ml: Alcotest Alloc Astring_contains Format Layout List Minesweeper Vmem
