test/test_shadow.ml: Alcotest Gen Layout List Minesweeper QCheck QCheck_alcotest Vmem
