test/test_realloc.ml: Alcotest Alloc Layout List Minesweeper Vmem
