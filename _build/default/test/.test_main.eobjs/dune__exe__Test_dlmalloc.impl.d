test/test_dlmalloc.ml: Alcotest Alloc Attack Layout List Minesweeper Vmem Workloads
