test/test_ptrtrack.ml: Alcotest Alloc Attack Layout List Minesweeper Ptrtrack Sim Vmem Workloads
