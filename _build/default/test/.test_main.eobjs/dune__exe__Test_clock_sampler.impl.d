test/test_clock_sampler.ml: Alcotest Array Gen List QCheck QCheck_alcotest Sim
