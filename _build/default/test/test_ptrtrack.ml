(* Pointer-tracking baselines: CRCount, pSweeper, DangSan — and the
   coverage contrast with MineSweeper's conservative sweep. *)

let fresh_machine () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  machine

let slot1 = Layout.globals_base + 64
let slot2 = Layout.globals_base + 72

(* --- registry ----------------------------------------------------- *)

let test_registry_tracks_and_replaces () =
  let machine = fresh_machine () in
  let heap = Alloc.Jemalloc.create machine in
  let r = Ptrtrack.Registry.create heap in
  let a = Alloc.Jemalloc.malloc heap 64 in
  let b = Alloc.Jemalloc.malloc heap 64 in
  Ptrtrack.Registry.record_write r ~slot:slot1 ~value:a;
  Alcotest.(check (option int)) "slot targets a" (Some a)
    (Ptrtrack.Registry.target_of r ~slot:slot1);
  Alcotest.(check int) "a has one in-pointer" 1
    (Ptrtrack.Registry.in_pointer_count r ~base:a);
  (* Overwrite with a pointer to b: the record moves. *)
  Ptrtrack.Registry.record_write r ~slot:slot1 ~value:b;
  Alcotest.(check int) "a released" 0
    (Ptrtrack.Registry.in_pointer_count r ~base:a);
  Alcotest.(check int) "b acquired" 1
    (Ptrtrack.Registry.in_pointer_count r ~base:b);
  (* Overwrite with a non-pointer: the record dies. *)
  Ptrtrack.Registry.record_write r ~slot:slot1 ~value:12345;
  Alcotest.(check int) "no tracked slots" 0 (Ptrtrack.Registry.tracked_slots r)

let test_registry_interior_pointers () =
  let machine = fresh_machine () in
  let heap = Alloc.Jemalloc.create machine in
  let r = Ptrtrack.Registry.create heap in
  let a = Alloc.Jemalloc.malloc heap 256 in
  Ptrtrack.Registry.record_write r ~slot:slot1 ~value:(a + 128);
  Alcotest.(check (option int)) "interior resolves to base" (Some a)
    (Ptrtrack.Registry.target_of r ~slot:slot1)

let test_registry_drop_slots_in () =
  let machine = fresh_machine () in
  let heap = Alloc.Jemalloc.create machine in
  let r = Ptrtrack.Registry.create heap in
  let holder = Alloc.Jemalloc.malloc heap 64 in
  let target = Alloc.Jemalloc.malloc heap 64 in
  Ptrtrack.Registry.record_write r ~slot:holder ~value:target;
  let dropped = ref [] in
  Ptrtrack.Registry.drop_slots_in r ~base:holder ~usable:64
    (fun ~slot ~target -> dropped := (slot, target) :: !dropped);
  Alcotest.(check (list (pair int int))) "dropped the holder's slot"
    [ (holder, target) ]
    !dropped;
  Alcotest.(check int) "registry empty" 0 (Ptrtrack.Registry.tracked_slots r)

(* --- CRCount ------------------------------------------------------ *)

let test_crcount_defers_while_referenced () =
  let machine = fresh_machine () in
  let cr = Ptrtrack.Crcount.create machine in
  let p = Ptrtrack.Crcount.malloc cr 64 in
  Ptrtrack.Crcount.on_pointer_write cr ~slot:slot1 ~old_value:0 ~value:p;
  Alcotest.(check int) "rc = 1" 1 (Ptrtrack.Crcount.refcount cr p);
  Ptrtrack.Crcount.free cr p;
  Alcotest.(check bool) "pending, not deallocated" true
    (Ptrtrack.Crcount.is_pending cr p);
  (* No reuse while the count is up. *)
  let q = Ptrtrack.Crcount.malloc cr 64 in
  Alcotest.(check bool) "no aliasing" true (q <> p);
  (* Clearing the pointer releases it. *)
  Ptrtrack.Crcount.on_pointer_write cr ~slot:slot1 ~old_value:p ~value:0;
  Alcotest.(check bool) "released at rc=0" false
    (Ptrtrack.Crcount.is_pending cr p)

let test_crcount_zeroing_drops_outgoing () =
  let machine = fresh_machine () in
  let cr = Ptrtrack.Crcount.create machine in
  let holder = Ptrtrack.Crcount.malloc cr 64 in
  let target = Ptrtrack.Crcount.malloc cr 64 in
  Vmem.store machine.Alloc.Machine.mem holder target;
  Ptrtrack.Crcount.on_pointer_write cr ~slot:holder ~old_value:0 ~value:target;
  Alcotest.(check int) "target rc 1" 1 (Ptrtrack.Crcount.refcount cr target);
  (* Freeing the holder zero-fills it: the outgoing reference dies. *)
  Ptrtrack.Crcount.free cr holder;
  Alcotest.(check int) "target rc dropped" 0
    (Ptrtrack.Crcount.refcount cr target);
  Alcotest.(check int) "holder content zeroed" 0
    (Vmem.load machine.Alloc.Machine.mem holder)

let test_crcount_double_free_absorbed () =
  let machine = fresh_machine () in
  let cr = Ptrtrack.Crcount.create machine in
  let p = Ptrtrack.Crcount.malloc cr 64 in
  Ptrtrack.Crcount.on_pointer_write cr ~slot:slot1 ~old_value:0 ~value:p;
  Ptrtrack.Crcount.free cr p;
  Ptrtrack.Crcount.free cr p;
  Alcotest.(check bool) "still pending once" true (Ptrtrack.Crcount.is_pending cr p)

(* --- pSweeper ----------------------------------------------------- *)

let test_psweeper_nullifies_at_sweep () =
  let machine = fresh_machine () in
  let ps = Ptrtrack.Psweeper.create machine in
  let mem = machine.Alloc.Machine.mem in
  let p = Ptrtrack.Psweeper.malloc ps 64 in
  Vmem.store mem slot1 p;
  Ptrtrack.Psweeper.on_pointer_write ps ~slot:slot1 ~old_value:0 ~value:p;
  Ptrtrack.Psweeper.free ps p;
  Alcotest.(check bool) "deferred until sweep" true
    (Ptrtrack.Psweeper.is_deferred ps p);
  Alcotest.(check int) "pointer still live before sweep" p (Vmem.load mem slot1);
  Ptrtrack.Psweeper.drain ps;
  Alcotest.(check int) "pointer nullified by sweep" 0 (Vmem.load mem slot1);
  Alcotest.(check bool) "deallocated after sweep" false
    (Ptrtrack.Psweeper.is_deferred ps p)

let test_psweeper_periodic () =
  let machine = fresh_machine () in
  let ps = Ptrtrack.Psweeper.create ~period_cycles:1000 machine in
  let p = Ptrtrack.Psweeper.malloc ps 64 in
  Ptrtrack.Psweeper.free ps p;
  Sim.Clock.advance machine.Alloc.Machine.clock 2000;
  Ptrtrack.Psweeper.tick ps;
  Alcotest.(check int) "sweep fired on period" 1 (Ptrtrack.Psweeper.sweeps ps);
  Alcotest.(check bool) "free completed" false (Ptrtrack.Psweeper.is_deferred ps p)

(* --- DangSan ------------------------------------------------------ *)

let test_dangsan_nullifies_immediately () =
  let machine = fresh_machine () in
  let ds = Ptrtrack.Dangsan.create machine in
  let mem = machine.Alloc.Machine.mem in
  let p = Ptrtrack.Dangsan.malloc ds 64 in
  Vmem.store mem slot1 p;
  Ptrtrack.Dangsan.on_pointer_write ds ~slot:slot1 ~old_value:0 ~value:p;
  Vmem.store mem slot2 p;
  Ptrtrack.Dangsan.on_pointer_write ds ~slot:slot2 ~old_value:0 ~value:p;
  Alcotest.(check int) "two log entries" 2 (Ptrtrack.Dangsan.log_entries_for ds p);
  Ptrtrack.Dangsan.free ds p;
  Alcotest.(check int) "slot1 nullified" 0 (Vmem.load mem slot1);
  Alcotest.(check int) "slot2 nullified" 0 (Vmem.load mem slot2);
  Alcotest.(check int) "log reclaimed" 0 (Ptrtrack.Dangsan.log_entries ds)

let test_dangsan_stale_log_entries_harmless () =
  let machine = fresh_machine () in
  let ds = Ptrtrack.Dangsan.create machine in
  let mem = machine.Alloc.Machine.mem in
  let p = Ptrtrack.Dangsan.malloc ds 64 in
  Vmem.store mem slot1 p;
  Ptrtrack.Dangsan.on_pointer_write ds ~slot:slot1 ~old_value:0 ~value:p;
  (* The program overwrites the slot with ordinary data; the log entry
     goes stale (DangSan does not remove it). *)
  Vmem.store mem slot1 777;
  Ptrtrack.Dangsan.free ds p;
  Alcotest.(check int) "stale slot untouched" 777 (Vmem.load mem slot1)

let test_dangsan_log_dedup () =
  let machine = fresh_machine () in
  let ds = Ptrtrack.Dangsan.create machine in
  let p = Ptrtrack.Dangsan.malloc ds 64 in
  for _ = 1 to 10 do
    Ptrtrack.Dangsan.on_pointer_write ds ~slot:slot1 ~old_value:0 ~value:p
  done;
  Alcotest.(check int) "same-slot repeats deduplicated" 1
    (Ptrtrack.Dangsan.log_entries_for ds p)

(* --- coverage contrast -------------------------------------------- *)

(* An UNinstrumented pointer (e.g. in code compiled without the pass, or
   manufactured by arithmetic) is invisible to pointer tracking but is
   still caught by MineSweeper's conservative sweep. *)
let test_uninstrumented_pointer_coverage_gap () =
  let machine = fresh_machine () in
  let cr = Ptrtrack.Crcount.create machine in
  let p = Ptrtrack.Crcount.malloc cr 64 in
  (* Pointer stored WITHOUT instrumentation: *)
  Vmem.store machine.Alloc.Machine.mem slot1 p;
  Ptrtrack.Crcount.free cr p;
  Alcotest.(check bool) "crcount deallocates despite the pointer" false
    (Ptrtrack.Crcount.is_pending cr p);
  (* MineSweeper, same situation: *)
  let machine2 = fresh_machine () in
  let ms = Minesweeper.Instance.create machine2 in
  let q = Minesweeper.Instance.malloc ms 64 in
  Vmem.store machine2.Alloc.Machine.mem slot1 q;
  Minesweeper.Instance.free ms q;
  for _ = 1 to 20_000 do
    let x = Minesweeper.Instance.malloc ms 64 in
    Minesweeper.Instance.free ms x
  done;
  Minesweeper.Instance.drain ms;
  Alcotest.(check bool) "minesweeper holds it conservatively" true
    (Minesweeper.Instance.is_quarantined ms q)

let test_attack_outcomes () =
  let run scheme =
    let machine = fresh_machine () in
    Attack.vtable_hijack
      (Workloads.Harness.build scheme ~threads:1 machine)
  in
  (match run Workloads.Harness.Cr_count with
  | Attack.Exploited -> Alcotest.fail "CRCount must prevent"
  | Attack.Benign | Attack.Prevented_fault -> ());
  (match run Workloads.Harness.P_sweeper with
  | Attack.Exploited -> Alcotest.fail "pSweeper must prevent"
  | Attack.Benign | Attack.Prevented_fault -> ());
  match run Workloads.Harness.Dang_san with
  | Attack.Exploited -> Alcotest.fail "DangSan must prevent"
  | Attack.Prevented_fault -> () (* nullification: null-deref terminates *)
  | Attack.Benign -> ()

let test_driver_runs_ptrtrack_schemes () =
  let profile =
    Workloads.Profile.make ~name:"tiny" ~suite:"test" ~ops:4000
      ~size:(Sim.Dist.uniform ~lo:16 ~hi:256)
      ~lifetime:(Sim.Dist.exponential ~mean:300.)
      ~work_per_op:200 ()
  in
  List.iter
    (fun scheme ->
      let r = Workloads.Driver.run profile scheme in
      Alcotest.(check int) "completes" 4000 r.Workloads.Driver.allocations;
      Alcotest.(check bool) "costs more than free" true
        (r.Workloads.Driver.wall > 0))
    [
      Workloads.Harness.Cr_count;
      Workloads.Harness.P_sweeper;
      Workloads.Harness.Dang_san;
    ]

let suite =
  ( "ptrtrack",
    [
      Alcotest.test_case "registry tracks and replaces" `Quick
        test_registry_tracks_and_replaces;
      Alcotest.test_case "registry interior pointers" `Quick
        test_registry_interior_pointers;
      Alcotest.test_case "registry drop_slots_in" `Quick
        test_registry_drop_slots_in;
      Alcotest.test_case "crcount defers while referenced" `Quick
        test_crcount_defers_while_referenced;
      Alcotest.test_case "crcount zeroing drops outgoing" `Quick
        test_crcount_zeroing_drops_outgoing;
      Alcotest.test_case "crcount double free" `Quick
        test_crcount_double_free_absorbed;
      Alcotest.test_case "psweeper nullifies at sweep" `Quick
        test_psweeper_nullifies_at_sweep;
      Alcotest.test_case "psweeper periodic" `Quick test_psweeper_periodic;
      Alcotest.test_case "dangsan nullifies immediately" `Quick
        test_dangsan_nullifies_immediately;
      Alcotest.test_case "dangsan stale entries harmless" `Quick
        test_dangsan_stale_log_entries_harmless;
      Alcotest.test_case "dangsan log dedup" `Quick test_dangsan_log_dedup;
      Alcotest.test_case "uninstrumented pointer coverage gap" `Quick
        test_uninstrumented_pointer_coverage_gap;
      Alcotest.test_case "attack outcomes" `Quick test_attack_outcomes;
      Alcotest.test_case "driver runs ptrtrack schemes" `Quick
        test_driver_runs_ptrtrack_schemes;
    ] )
