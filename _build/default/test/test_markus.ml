(* MarkUs baseline tests: transitive conservative marking semantics. *)

let fresh () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  (machine, Markus.create machine)

let root_slot = Layout.globals_base + 64
let root_slot2 = Layout.globals_base + 72

let churn mk n size =
  for _ = 1 to n do
    let p = Markus.malloc mk size in
    Markus.free mk p
  done;
  Markus.drain mk

(* Release proof by reuse; see test_instance.ml for why. *)
let eventually_reused mk size victim =
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < 60_000 do
    let p = Markus.malloc mk size in
    if p = victim then found := true else Markus.free mk p;
    incr i
  done;
  !found

let test_free_quarantines () =
  let _, mk = fresh () in
  let p = Markus.malloc mk 64 in
  Markus.free mk p;
  Alcotest.(check bool) "quarantined" true (Markus.is_quarantined mk p)

let test_double_free_absorbed () =
  let _, mk = fresh () in
  let p = Markus.malloc mk 64 in
  Markus.free mk p;
  Markus.free mk p;
  Alcotest.(check bool) "still just quarantined" true
    (Markus.is_quarantined mk p)

let test_reachable_dangling_blocks_reuse () =
  let machine, mk = fresh () in
  let victim = Markus.malloc mk 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  Markus.free mk victim;
  for _ = 1 to 20_000 do
    let p = Markus.malloc mk 48 in
    Alcotest.(check bool) "no aliasing" true (p <> victim);
    Markus.free mk p
  done;
  Alcotest.(check bool) "held" true (Markus.is_quarantined mk victim)

let test_release_after_clear () =
  let machine, mk = fresh () in
  let victim = Markus.malloc mk 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  Markus.free mk victim;
  churn mk 20_000 48;
  Vmem.store machine.Alloc.Machine.mem root_slot 0;
  Alcotest.(check bool) "reused after clear" true
    (eventually_reused mk 48 victim)

let test_transitive_reachability () =
  (* root -> a -> b, with b freed: a transitive chain must protect b
     even though no root points at it directly. *)
  let machine, mk = fresh () in
  let a = Markus.malloc mk 64 in
  let b = Markus.malloc mk 64 in
  Vmem.store machine.Alloc.Machine.mem root_slot a;
  Vmem.store machine.Alloc.Machine.mem a b;
  Markus.free mk b;
  churn mk 20_000 64;
  Alcotest.(check bool) "transitively reachable -> held" true
    (Markus.is_quarantined mk b)

let test_unreachable_cycle_collected () =
  (* MarkUs's claim to fame: quarantined cycles with no external
     references are freed without zeroing (unlike a naive sweep). *)
  let machine, mk = fresh () in
  let a = Markus.malloc mk 64 and b = Markus.malloc mk 64 in
  Vmem.store machine.Alloc.Machine.mem a b;
  Vmem.store machine.Alloc.Machine.mem b a;
  Markus.free mk a;
  Markus.free mk b;
  churn mk 20_000 64;
  Alcotest.(check bool) "unreachable cycle freed (one member reused)" true
    (eventually_reused mk 64 a || eventually_reused mk 64 b)

let test_chain_through_quarantine () =
  (* root -> x (freed), x -> y (freed): reachability flows through
     quarantined objects because MarkUs does not zero. *)
  let machine, mk = fresh () in
  let x = Markus.malloc mk 64 and y = Markus.malloc mk 64 in
  Vmem.store machine.Alloc.Machine.mem root_slot x;
  Vmem.store machine.Alloc.Machine.mem x y;
  Vmem.store machine.Alloc.Machine.mem root_slot2 0;
  Markus.free mk y;
  Markus.free mk x;
  churn mk 20_000 64;
  Alcotest.(check bool) "x held by root" true (Markus.is_quarantined mk x);
  Alcotest.(check bool) "y held through x" true (Markus.is_quarantined mk y)

let test_sweeps_and_visits_counted () =
  let _, mk = fresh () in
  churn mk 30_000 128;
  Alcotest.(check bool) "marking passes ran" true (Markus.sweeps mk > 0);
  Alcotest.(check bool) "traversal work recorded" true
    (Markus.marked_visited_bytes mk >= 0)

let suite =
  ( "markus",
    [
      Alcotest.test_case "free quarantines" `Quick test_free_quarantines;
      Alcotest.test_case "double free absorbed" `Quick test_double_free_absorbed;
      Alcotest.test_case "reachable dangling blocks reuse" `Quick
        test_reachable_dangling_blocks_reuse;
      Alcotest.test_case "release after clear" `Quick test_release_after_clear;
      Alcotest.test_case "transitive reachability" `Quick
        test_transitive_reachability;
      Alcotest.test_case "unreachable cycle collected" `Quick
        test_unreachable_cycle_collected;
      Alcotest.test_case "chain through quarantine" `Quick
        test_chain_through_quarantine;
      Alcotest.test_case "sweeps counted" `Quick test_sweeps_and_visits_counted;
    ] )
