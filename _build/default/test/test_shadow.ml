(* Shadow-map tests: the mark algebra the release phase depends on. *)

let base = Layout.heap_base
let granule = Vmem.granule

let test_fresh_is_clean () =
  let s = Minesweeper.Shadow.create () in
  Alcotest.(check bool) "unmarked" false (Minesweeper.Shadow.is_marked s base);
  Alcotest.(check int) "no marks" 0 (Minesweeper.Shadow.marked_granules s)

let test_mark_sets_granule () =
  let s = Minesweeper.Shadow.create () in
  Minesweeper.Shadow.mark s (base + 100);
  Alcotest.(check bool) "marked" true
    (Minesweeper.Shadow.is_marked s (base + 100));
  (* Same granule: 100 and 96 share granule 6. *)
  Alcotest.(check bool) "same granule marked" true
    (Minesweeper.Shadow.is_marked s (base + 96));
  Alcotest.(check bool) "next granule clean" false
    (Minesweeper.Shadow.is_marked s (base + 112));
  Alcotest.(check int) "one mark" 1 (Minesweeper.Shadow.marked_granules s)

let test_mark_idempotent () =
  let s = Minesweeper.Shadow.create () in
  Minesweeper.Shadow.mark s base;
  Minesweeper.Shadow.mark s base;
  Alcotest.(check int) "still one mark" 1 (Minesweeper.Shadow.marked_granules s)

let test_clear () =
  let s = Minesweeper.Shadow.create () in
  Minesweeper.Shadow.mark s base;
  Minesweeper.Shadow.mark s (base + 4096);
  Minesweeper.Shadow.clear s;
  Alcotest.(check int) "cleared" 0 (Minesweeper.Shadow.marked_granules s);
  Alcotest.(check bool) "specific bit cleared" false
    (Minesweeper.Shadow.is_marked s base)

let test_range_marked () =
  let s = Minesweeper.Shadow.create () in
  Minesweeper.Shadow.mark s (base + 64);
  Alcotest.(check bool) "range containing mark" true
    (Minesweeper.Shadow.range_marked s ~addr:base ~len:128);
  Alcotest.(check bool) "range before mark" false
    (Minesweeper.Shadow.range_marked s ~addr:base ~len:64);
  Alcotest.(check bool) "range after mark" false
    (Minesweeper.Shadow.range_marked s ~addr:(base + 80) ~len:64)

let test_range_marked_unaligned () =
  let s = Minesweeper.Shadow.create () in
  (* Mark granule [16,32); a range starting at 30 intersects it. *)
  Minesweeper.Shadow.mark s (base + 16);
  Alcotest.(check bool) "unaligned intersecting range" true
    (Minesweeper.Shadow.range_marked s ~addr:(base + 30) ~len:4);
  Alcotest.(check bool) "unaligned disjoint range" false
    (Minesweeper.Shadow.range_marked s ~addr:(base + 32) ~len:4)

let test_page_boundaries () =
  let s = Minesweeper.Shadow.create () in
  let last_in_page = base + Vmem.page_size - granule in
  Minesweeper.Shadow.mark s last_in_page;
  Alcotest.(check bool) "mark at page end" true
    (Minesweeper.Shadow.is_marked s (base + Vmem.page_size - 1));
  Alcotest.(check bool) "next page clean" false
    (Minesweeper.Shadow.is_marked s (base + Vmem.page_size));
  Alcotest.(check bool) "range spanning pages sees it" true
    (Minesweeper.Shadow.range_marked s
       ~addr:(base + Vmem.page_size - 32)
       ~len:64)

let test_shadow_compactness () =
  (* One bit per granule: a page of marks costs 32 bytes of shadow. *)
  let s = Minesweeper.Shadow.create () in
  for g = 0 to (Vmem.page_size / granule) - 1 do
    Minesweeper.Shadow.mark s (base + (g * granule))
  done;
  Alcotest.(check int) "all page granules marked" 256
    (Minesweeper.Shadow.marked_granules s);
  Alcotest.(check int) "32 shadow bytes per page" 32
    (Minesweeper.Shadow.shadow_bytes s)

let prop_mark_then_query =
  QCheck.Test.make ~name:"any marked address tests positive" ~count:500
    QCheck.(int_range 0 ((1 lsl 24) - 1))
    (fun offset ->
      let s = Minesweeper.Shadow.create () in
      let p = base + offset in
      Minesweeper.Shadow.mark s p;
      Minesweeper.Shadow.is_marked s p
      && Minesweeper.Shadow.range_marked s ~addr:p ~len:1)

let prop_unmarked_ranges_clean =
  QCheck.Test.make ~name:"disjoint ranges stay clean" ~count:500
    QCheck.(pair (int_range 0 10_000) (int_range 1 256))
    (fun (offset, len) ->
      let s = Minesweeper.Shadow.create () in
      let p = base + (offset * granule) in
      Minesweeper.Shadow.mark s p;
      (* A range strictly beyond the marked granule must be clean. *)
      not
        (Minesweeper.Shadow.range_marked s ~addr:(p + granule)
           ~len:(len * granule)))

let prop_range_equivalent_to_pointwise =
  QCheck.Test.make ~name:"range_marked agrees with granule-wise is_marked"
    ~count:300
    QCheck.(
      triple (int_range 0 2000) (int_range 1 512)
        (list_of_size Gen.(int_range 0 5) (int_range 0 2500)))
    (fun (start, len, marks) ->
      let s = Minesweeper.Shadow.create () in
      List.iter (fun g -> Minesweeper.Shadow.mark s (base + (g * granule))) marks;
      let addr = base + (start * granule) in
      let expected =
        let rec check p =
          p < addr + len
          && (Minesweeper.Shadow.is_marked s p || check (p + granule))
        in
        check (addr - (addr mod granule))
      in
      Minesweeper.Shadow.range_marked s ~addr ~len = expected)

let suite =
  ( "minesweeper.shadow",
    [
      Alcotest.test_case "fresh is clean" `Quick test_fresh_is_clean;
      Alcotest.test_case "mark sets granule" `Quick test_mark_sets_granule;
      Alcotest.test_case "mark idempotent" `Quick test_mark_idempotent;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "range_marked" `Quick test_range_marked;
      Alcotest.test_case "range_marked unaligned" `Quick
        test_range_marked_unaligned;
      Alcotest.test_case "page boundaries" `Quick test_page_boundaries;
      Alcotest.test_case "shadow compactness" `Quick test_shadow_compactness;
      QCheck_alcotest.to_alcotest prop_mark_then_query;
      QCheck_alcotest.to_alcotest prop_unmarked_ranges_clean;
      QCheck_alcotest.to_alcotest prop_range_equivalent_to_pointwise;
    ] )
