(* Clock (thread/CPU accounting) and Sampler (RSS traces) tests. *)

let test_clock_advance () =
  let c = Sim.Clock.create () in
  Sim.Clock.advance c 100;
  Sim.Clock.advance c 50;
  Alcotest.(check int) "wall" 150 (Sim.Clock.now c);
  Alcotest.(check int) "app busy" 150 (Sim.Clock.app_busy c)

let test_clock_stall () =
  let c = Sim.Clock.create () in
  Sim.Clock.advance c 100;
  Sim.Clock.stall c 40;
  Alcotest.(check int) "wall includes stall" 140 (Sim.Clock.now c);
  Alcotest.(check int) "busy excludes stall" 100 (Sim.Clock.app_busy c);
  Alcotest.(check int) "stalled" 40 (Sim.Clock.stalled c)

let test_clock_background () =
  let c = Sim.Clock.create () in
  Sim.Clock.advance c 100;
  Sim.Clock.background c 300;
  Alcotest.(check int) "wall unaffected by bg" 100 (Sim.Clock.now c);
  Alcotest.(check int) "bg busy" 300 (Sim.Clock.background_busy c)

let test_cpu_utilisation () =
  let c = Sim.Clock.create () in
  Alcotest.(check (float 0.001)) "fresh clock" 1.0 (Sim.Clock.cpu_utilisation c);
  Sim.Clock.advance c 100;
  Alcotest.(check (float 0.001)) "single thread" 1.0
    (Sim.Clock.cpu_utilisation c);
  Sim.Clock.background c 100;
  Alcotest.(check (float 0.001)) "with one sweeper" 2.0
    (Sim.Clock.cpu_utilisation c);
  Sim.Clock.stall c 100;
  Alcotest.(check (float 0.001)) "stalls dilute" 1.0
    (Sim.Clock.cpu_utilisation c)

let test_sampler_peak_average () =
  let s = Sim.Sampler.create () in
  Sim.Sampler.record s ~now:0 ~rss:100;
  Sim.Sampler.record s ~now:10 ~rss:200;
  Sim.Sampler.record s ~now:20 ~rss:100;
  Alcotest.(check int) "peak" 200 (Sim.Sampler.peak s);
  (* trapezoidal: (150*10 + 150*10)/20 = 150 *)
  Alcotest.(check (float 0.001)) "average" 150. (Sim.Sampler.average s)

let test_sampler_empty () =
  let s = Sim.Sampler.create () in
  Alcotest.(check int) "empty peak" 0 (Sim.Sampler.peak s);
  Alcotest.(check (float 0.001)) "empty avg" 0. (Sim.Sampler.average s);
  Alcotest.(check int) "empty normalised" 0
    (Array.length (Sim.Sampler.normalised s ~points:10))

let test_sampler_single () =
  let s = Sim.Sampler.create () in
  Sim.Sampler.record s ~now:5 ~rss:77;
  Alcotest.(check (float 0.001)) "single avg" 77. (Sim.Sampler.average s);
  Alcotest.(check int) "single peak" 77 (Sim.Sampler.peak s)

let test_sampler_growth () =
  (* Many samples: tests the growable backing arrays. *)
  let s = Sim.Sampler.create () in
  for i = 0 to 9_999 do
    Sim.Sampler.record s ~now:i ~rss:i
  done;
  Alcotest.(check int) "peak is last" 9_999 (Sim.Sampler.peak s);
  Alcotest.(check int) "all samples kept" 10_000
    (Array.length (Sim.Sampler.samples s))

let test_sampler_normalised () =
  let s = Sim.Sampler.create () in
  Sim.Sampler.record s ~now:0 ~rss:10;
  Sim.Sampler.record s ~now:100 ~rss:20;
  let points = Sim.Sampler.normalised s ~points:5 in
  Alcotest.(check int) "requested points" 5 (Array.length points);
  let x0, y0 = points.(0) and x4, y4 = points.(4) in
  Alcotest.(check (float 0.001)) "starts at 0" 0.0 x0;
  Alcotest.(check (float 0.001)) "ends at 1" 1.0 x4;
  Alcotest.(check int) "first value" 10 y0;
  Alcotest.(check int) "last value" 20 y4

let prop_sampler_average_bounded =
  QCheck.Test.make ~name:"sampler average between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 30) (int_range 0 10_000))
    (fun values ->
      QCheck.assume (List.length values >= 2);
      let s = Sim.Sampler.create () in
      List.iteri (fun i v -> Sim.Sampler.record s ~now:(i * 10) ~rss:v) values;
      let avg = Sim.Sampler.average s in
      let lo = List.fold_left min max_int values in
      let hi = List.fold_left max 0 values in
      avg >= float_of_int lo -. 0.001 && avg <= float_of_int hi +. 0.001)

let suite =
  ( "sim.clock+sampler",
    [
      Alcotest.test_case "clock advance" `Quick test_clock_advance;
      Alcotest.test_case "clock stall" `Quick test_clock_stall;
      Alcotest.test_case "clock background" `Quick test_clock_background;
      Alcotest.test_case "cpu utilisation" `Quick test_cpu_utilisation;
      Alcotest.test_case "sampler peak/average" `Quick test_sampler_peak_average;
      Alcotest.test_case "sampler empty" `Quick test_sampler_empty;
      Alcotest.test_case "sampler single" `Quick test_sampler_single;
      Alcotest.test_case "sampler growth" `Quick test_sampler_growth;
      Alcotest.test_case "sampler normalised" `Quick test_sampler_normalised;
      QCheck_alcotest.to_alcotest prop_sampler_average_bounded;
    ] )
