(* JeMalloc-model allocator tests. *)

let fresh ?extra_byte () =
  let machine = Alloc.Machine.create () in
  (machine, Alloc.Jemalloc.create ?extra_byte machine)

let test_malloc_returns_heap_addresses () =
  let _, je = fresh () in
  for _ = 1 to 100 do
    let p = Alloc.Jemalloc.malloc je 64 in
    Alcotest.(check bool) "in heap region" true (Layout.in_heap p)
  done

let test_distinct_live_allocations () =
  let _, je = fresh () in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    let p = Alloc.Jemalloc.malloc je 48 in
    Alcotest.(check bool) "address not already live" false (Hashtbl.mem seen p);
    Hashtbl.replace seen p ()
  done

let test_usable_size_covers_request () =
  let _, je = fresh () in
  List.iter
    (fun size ->
      let p = Alloc.Jemalloc.malloc je size in
      Alcotest.(check bool)
        (Printf.sprintf "usable >= %d" size)
        true
        (Alloc.Jemalloc.usable_size je p >= size))
    [ 1; 7; 8; 63; 128; 4000; 14336; 14337; 100_000; 1_000_000 ]

let test_extra_byte () =
  let _, je = fresh ~extra_byte:true () in
  (* A 16-byte request plus the end-pointer byte must not fit class 16. *)
  let p = Alloc.Jemalloc.malloc je 16 in
  Alcotest.(check bool) "usable > 16" true (Alloc.Jemalloc.usable_size je p > 16)

let test_free_and_reuse () =
  let _, je = fresh () in
  let p = Alloc.Jemalloc.malloc je 64 in
  Alloc.Jemalloc.free je p;
  (* The tcache serves the same address straight back. *)
  let q = Alloc.Jemalloc.malloc je 64 in
  Alcotest.(check int) "LIFO reuse via tcache" p q

let test_malloc_zeroes () =
  let machine, je = fresh () in
  let p = Alloc.Jemalloc.malloc je 64 in
  Vmem.store machine.Alloc.Machine.mem p 777;
  Alloc.Jemalloc.free je p;
  let q = Alloc.Jemalloc.malloc je 64 in
  Alcotest.(check int) "reuse zeroed" 0 (Vmem.load machine.Alloc.Machine.mem q)

let test_live_accounting () =
  let _, je = fresh () in
  let ps = List.init 50 (fun _ -> Alloc.Jemalloc.malloc je 100) in
  Alcotest.(check int) "live count" 50 (Alloc.Jemalloc.live_allocations je);
  let expected = 50 * Alloc.Jemalloc.usable_size je (List.hd ps) in
  Alcotest.(check int) "live bytes" expected (Alloc.Jemalloc.live_bytes je);
  List.iter (Alloc.Jemalloc.free je) ps;
  Alcotest.(check int) "live zero" 0 (Alloc.Jemalloc.live_allocations je);
  Alcotest.(check int) "bytes zero" 0 (Alloc.Jemalloc.live_bytes je)

let test_is_live () =
  let _, je = fresh () in
  let p = Alloc.Jemalloc.malloc je 64 in
  Alcotest.(check bool) "live after malloc" true (Alloc.Jemalloc.is_live je p);
  Alloc.Jemalloc.free je p;
  Alcotest.(check bool) "dead after free" false (Alloc.Jemalloc.is_live je p)

let test_large_allocations () =
  let machine, je = fresh () in
  let p = Alloc.Jemalloc.malloc je 100_000 in
  Alcotest.(check bool) "page aligned" true (p mod Vmem.page_size = 0);
  Alcotest.(check int) "usable rounds to pages"
    (25 * Vmem.page_size)
    (Alloc.Jemalloc.usable_size je p);
  Vmem.store machine.Alloc.Machine.mem (p + 99_992) 5;
  Alloc.Jemalloc.free je p

let test_free_rejects_garbage () =
  let _, je = fresh () in
  Alcotest.check_raises "free of never-allocated address"
    (Invalid_argument "Jemalloc.free: not an allocation") (fun () ->
      Alloc.Jemalloc.free je (Layout.heap_base + 123456 * 4096))

let test_allocation_containing () =
  let _, je = fresh () in
  let small = Alloc.Jemalloc.malloc je 100 in
  let big = Alloc.Jemalloc.malloc je 50_000 in
  (match Alloc.Jemalloc.allocation_containing je (small + 50) with
  | Some (base, usable) ->
    Alcotest.(check int) "small interior resolves to base" small base;
    Alcotest.(check bool) "usable covers" true (usable >= 100)
  | None -> Alcotest.fail "interior pointer not resolved");
  (match Alloc.Jemalloc.allocation_containing je (big + 40_000) with
  | Some (base, _) -> Alcotest.(check int) "large interior" big base
  | None -> Alcotest.fail "large interior pointer not resolved");
  Alcotest.(check bool) "unbacked address resolves to none" true
    (Alloc.Jemalloc.allocation_containing je (Layout.heap_limit - 4096) = None)

let test_slab_cycling () =
  (* Fill several slabs, free everything, confirm slabs are released
     back to the extent layer. *)
  let _, je = fresh () in
  let ps = List.init 2000 (fun _ -> Alloc.Jemalloc.malloc je 512) in
  let stats_full = Alloc.Jemalloc.stats je in
  Alcotest.(check bool) "multiple slabs in use" true
    (stats_full.Alloc.Jemalloc.slab_count > 1);
  List.iter (Alloc.Jemalloc.free je) ps;
  let stats_empty = Alloc.Jemalloc.stats je in
  (* Some slots linger in the tcache, pinning at most a slab or two. *)
  Alcotest.(check bool) "slabs released" true
    (stats_empty.Alloc.Jemalloc.slab_count <= 2)

let test_purge_reduces_rss () =
  let machine, je = fresh () in
  let ps = List.init 100 (fun _ -> Alloc.Jemalloc.malloc je 8192) in
  let rss_full = Vmem.committed_bytes machine.Alloc.Machine.mem in
  List.iter (Alloc.Jemalloc.free je) ps;
  Alloc.Jemalloc.purge_all je;
  let rss_after = Vmem.committed_bytes machine.Alloc.Machine.mem in
  Alcotest.(check bool)
    (Printf.sprintf "purge shrinks rss (%d -> %d)" rss_full rss_after)
    true (rss_after < rss_full / 2)

let test_charges_cycles () =
  let machine, je = fresh () in
  let before = Sim.Clock.app_busy machine.Alloc.Machine.clock in
  ignore (Alloc.Jemalloc.malloc je 64);
  Alcotest.(check bool) "malloc charges the app thread" true
    (Sim.Clock.app_busy machine.Alloc.Machine.clock > before)

let prop_malloc_free_stress =
  QCheck.Test.make ~name:"random malloc/free interleavings stay consistent"
    ~count:30
    QCheck.(list_of_size Gen.(return 300) (int_range 1 20_000))
    (fun sizes ->
      let _, je = fresh () in
      let live = ref [] in
      List.iteri
        (fun i size ->
          if i mod 3 = 2 then (
            match !live with
            | p :: rest ->
              Alloc.Jemalloc.free je p;
              live := rest
            | [] -> ())
          else live := Alloc.Jemalloc.malloc je size :: !live)
        sizes;
      List.iter (Alloc.Jemalloc.free je) !live;
      Alloc.Jemalloc.live_allocations je = 0
      && Alloc.Jemalloc.live_bytes je = 0)

let suite =
  ( "alloc.jemalloc",
    [
      Alcotest.test_case "heap addresses" `Quick
        test_malloc_returns_heap_addresses;
      Alcotest.test_case "distinct live allocations" `Quick
        test_distinct_live_allocations;
      Alcotest.test_case "usable covers request" `Quick
        test_usable_size_covers_request;
      Alcotest.test_case "extra byte" `Quick test_extra_byte;
      Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
      Alcotest.test_case "malloc zeroes" `Quick test_malloc_zeroes;
      Alcotest.test_case "live accounting" `Quick test_live_accounting;
      Alcotest.test_case "is_live" `Quick test_is_live;
      Alcotest.test_case "large allocations" `Quick test_large_allocations;
      Alcotest.test_case "free rejects garbage" `Quick test_free_rejects_garbage;
      Alcotest.test_case "allocation_containing" `Quick
        test_allocation_containing;
      Alcotest.test_case "slab cycling" `Quick test_slab_cycling;
      Alcotest.test_case "purge reduces rss" `Quick test_purge_reduces_rss;
      Alcotest.test_case "charges cycles" `Quick test_charges_cycles;
      QCheck_alcotest.to_alcotest prop_malloc_free_stress;
    ] )
