(* Size-class table tests. *)

let test_monotone () =
  for i = 1 to Alloc.Size_class.count - 1 do
    Alcotest.(check bool) "strictly increasing" true
      (Alloc.Size_class.size_of_class i > Alloc.Size_class.size_of_class (i - 1))
  done

let test_first_and_last () =
  Alcotest.(check int) "smallest class" 8 (Alloc.Size_class.size_of_class 0);
  Alcotest.(check int) "largest class is small_max" Alloc.Size_class.small_max
    (Alloc.Size_class.size_of_class (Alloc.Size_class.count - 1))

let test_class_of_size_exact () =
  for i = 0 to Alloc.Size_class.count - 1 do
    let size = Alloc.Size_class.size_of_class i in
    Alcotest.(check int) "exact size maps to own class" i
      (Alloc.Size_class.class_of_size size)
  done

let test_round_up () =
  (* A request one byte above a class must land in the next class. *)
  for i = 0 to Alloc.Size_class.count - 2 do
    let size = Alloc.Size_class.size_of_class i in
    Alcotest.(check int) "size+1 next class" (i + 1)
      (Alloc.Size_class.class_of_size (size + 1))
  done

let test_slab_geometry () =
  for i = 0 to Alloc.Size_class.count - 1 do
    let pages = Alloc.Size_class.slab_pages i in
    let slots = Alloc.Size_class.slab_slots i in
    let size = Alloc.Size_class.size_of_class i in
    Alcotest.(check bool) "at least one slot" true (slots >= 1);
    Alcotest.(check bool) "slab holds its slots" true
      (slots * size <= pages * Vmem.page_size);
    (* Waste under 1/8 of the slab (the table targets 1/16 but falls
       back to least-waste for awkward classes). *)
    let waste = (pages * Vmem.page_size) - (slots * size) in
    Alcotest.(check bool)
      (Printf.sprintf "class %d (size %d): waste %d of %d" i size waste
         (pages * Vmem.page_size))
      true
      (waste * 8 <= pages * Vmem.page_size)
  done

let test_large_pages () =
  Alcotest.(check int) "one page" 1 (Alloc.Size_class.large_pages 1);
  Alcotest.(check int) "exact page" 1 (Alloc.Size_class.large_pages 4096);
  Alcotest.(check int) "page + 1" 2 (Alloc.Size_class.large_pages 4097);
  Alcotest.(check int) "1MiB" 256 (Alloc.Size_class.large_pages (1 lsl 20))

let prop_class_covers_request =
  QCheck.Test.make ~name:"class size always covers the request" ~count:1000
    QCheck.(int_range 1 Alloc.Size_class.small_max)
    (fun size ->
      let cls = Alloc.Size_class.class_of_size size in
      Alloc.Size_class.size_of_class cls >= size)

let prop_class_is_tight =
  QCheck.Test.make ~name:"chosen class is the smallest adequate one"
    ~count:1000
    QCheck.(int_range 1 Alloc.Size_class.small_max)
    (fun size ->
      let cls = Alloc.Size_class.class_of_size size in
      cls = 0 || Alloc.Size_class.size_of_class (cls - 1) < size)

let suite =
  ( "alloc.size_class",
    [
      Alcotest.test_case "monotone" `Quick test_monotone;
      Alcotest.test_case "first and last" `Quick test_first_and_last;
      Alcotest.test_case "exact class lookup" `Quick test_class_of_size_exact;
      Alcotest.test_case "round up" `Quick test_round_up;
      Alcotest.test_case "slab geometry" `Quick test_slab_geometry;
      Alcotest.test_case "large pages" `Quick test_large_pages;
      QCheck_alcotest.to_alcotest prop_class_covers_request;
      QCheck_alcotest.to_alcotest prop_class_is_tight;
    ] )
