(* dlmalloc-model tests: in-band metadata semantics and the unlink
   exploit that MineSweeper defuses. *)

let fresh () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  machine

let fresh_stack scheme =
  let machine = fresh () in
  Workloads.Harness.build scheme ~threads:1 machine

let test_malloc_free_reuse () =
  let machine = fresh () in
  let dl = Alloc.Dlmalloc.create machine in
  let p = Alloc.Dlmalloc.malloc dl 64 in
  Alcotest.(check bool) "usable covers" true (Alloc.Dlmalloc.usable_size dl p >= 64);
  Alloc.Dlmalloc.free dl p;
  let q = Alloc.Dlmalloc.malloc dl 64 in
  Alcotest.(check int) "bin head reused" p q

let test_header_in_band () =
  let machine = fresh () in
  let dl = Alloc.Dlmalloc.create machine in
  let p = Alloc.Dlmalloc.malloc dl 64 in
  let header = Vmem.load machine.Alloc.Machine.mem (Alloc.Dlmalloc.header_of dl p) in
  Alcotest.(check int) "size|allocated bit in memory" (64 lor 1) header

let test_free_links_in_band () =
  let machine = fresh () in
  let dl = Alloc.Dlmalloc.create machine in
  let a = Alloc.Dlmalloc.malloc dl 64 in
  let b = Alloc.Dlmalloc.malloc dl 64 in
  Alloc.Dlmalloc.free dl a;
  Alloc.Dlmalloc.free dl b;
  (* b is the bin head; its fd (stored in simulated memory!) is a. *)
  Alcotest.(check int) "fd link lives in the payload" a
    (Vmem.load machine.Alloc.Machine.mem b);
  Alcotest.(check int) "bk back-link" b
    (Vmem.load machine.Alloc.Machine.mem (a + 8));
  Alcotest.(check bool) "bins consistent" true
    (Alloc.Dlmalloc.check_bin_integrity dl)

let test_double_free_detected () =
  let machine = fresh () in
  let dl = Alloc.Dlmalloc.create machine in
  let p = Alloc.Dlmalloc.malloc dl 64 in
  Alloc.Dlmalloc.free dl p;
  Alcotest.check_raises "double free raises"
    (Invalid_argument "Dlmalloc.free: double free or not an allocation")
    (fun () -> Alloc.Dlmalloc.free dl p)

let test_bins_size_classes () =
  Alcotest.(check int) "16B -> bin 0" 0 (Alloc.Dlmalloc.bin_of_size 16);
  Alcotest.(check int) "17B rounds up" 1 (Alloc.Dlmalloc.bin_of_size 17);
  Alcotest.(check bool) "large sizes map to large bins" true
    (Alloc.Dlmalloc.bin_of_size 100_000 > Alloc.Dlmalloc.bin_of_size 512)

let test_corruption_detectable () =
  let machine = fresh () in
  let dl = Alloc.Dlmalloc.create machine in
  let p = Alloc.Dlmalloc.malloc dl 64 in
  Alloc.Dlmalloc.free dl p;
  (* UAF write forging the links breaks the doubly-linked invariant. *)
  Vmem.store machine.Alloc.Machine.mem p (Layout.globals_base + 256 - 8);
  Vmem.store machine.Alloc.Machine.mem (p + 8) (Layout.globals_base + 512);
  Alcotest.(check bool) "integrity check catches the forgery" false
    (Alloc.Dlmalloc.check_bin_integrity dl)

let test_unlink_exploit_on_dlmalloc () =
  match Attack.unlink_corruption (fresh_stack Workloads.Harness.Dl_baseline) with
  | Attack.Exploited -> ()
  | Attack.Benign | Attack.Prevented_fault ->
    Alcotest.fail "in-band metadata must be exploitable (that's the point)"

let test_unlink_defused_by_minesweeper () =
  match
    Attack.unlink_corruption
      (fresh_stack (Workloads.Harness.Dl_sweeper Minesweeper.Config.default))
  with
  | Attack.Exploited -> Alcotest.fail "MineSweeper must defuse unlink"
  | Attack.Benign | Attack.Prevented_fault -> ()

let test_unlink_immune_out_of_band () =
  (* JeMalloc keeps metadata out of band: nothing to forge. *)
  match Attack.unlink_corruption (fresh_stack Workloads.Harness.Baseline) with
  | Attack.Exploited -> Alcotest.fail "out-of-band metadata cannot be forged"
  | Attack.Benign | Attack.Prevented_fault -> ()

let test_minesweeper_over_dlmalloc_protects () =
  let machine = fresh () in
  let stack =
    Workloads.Harness.build
      (Workloads.Harness.Dl_sweeper Minesweeper.Config.default)
      ~threads:1 machine
  in
  match Attack.vtable_hijack stack with
  | Attack.Exploited -> Alcotest.fail "hijack must be prevented over dlmalloc"
  | Attack.Benign | Attack.Prevented_fault -> ()

let suite =
  ( "dlmalloc",
    [
      Alcotest.test_case "malloc/free/reuse" `Quick test_malloc_free_reuse;
      Alcotest.test_case "header in band" `Quick test_header_in_band;
      Alcotest.test_case "free links in band" `Quick test_free_links_in_band;
      Alcotest.test_case "double free detected" `Quick test_double_free_detected;
      Alcotest.test_case "bin size classes" `Quick test_bins_size_classes;
      Alcotest.test_case "corruption detectable" `Quick
        test_corruption_detectable;
      Alcotest.test_case "unlink exploits dlmalloc" `Quick
        test_unlink_exploit_on_dlmalloc;
      Alcotest.test_case "unlink defused by minesweeper" `Quick
        test_unlink_defused_by_minesweeper;
      Alcotest.test_case "unlink immune out-of-band" `Quick
        test_unlink_immune_out_of_band;
      Alcotest.test_case "minesweeper-over-dlmalloc protects" `Quick
        test_minesweeper_over_dlmalloc_protects;
    ] )
