(* Scudo backend tests + MineSweeper-over-Scudo (the Section 7
   integration through the Instance functor). *)

module Scudo_ms = Minesweeper.Instance.Make (Alloc.Backends.Scudo_backend)

let fresh () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  machine

let test_malloc_free_roundtrip () =
  let machine = fresh () in
  let sc = Alloc.Scudo.create machine in
  let p = Alloc.Scudo.malloc sc 64 in
  Alcotest.(check bool) "heap address" true (Layout.in_heap p);
  Alcotest.(check bool) "usable covers request+header" true
    (Alloc.Scudo.usable_size sc p >= 64);
  Alloc.Scudo.free sc p

let test_randomised_reuse_pool () =
  let machine = fresh () in
  let sc = Alloc.Scudo.create machine in
  let ps = List.init 8 (fun _ -> Alloc.Scudo.malloc sc 64) in
  List.iter (Alloc.Scudo.free sc) ps;
  (* Frees land in the pool first, delaying the heap's reuse. *)
  Alcotest.(check int) "pool holds the frees" 8 (Alloc.Scudo.pool_size sc);
  (* The next allocation must not come from the pool (no immediate
     reuse, unlike plain JeMalloc's tcache). *)
  let q = Alloc.Scudo.malloc sc 64 in
  Alcotest.(check bool) "no immediate LIFO reuse" true
    (not (List.mem q ps))

let test_pool_eviction_bounded () =
  let machine = fresh () in
  let sc = Alloc.Scudo.create machine in
  for _ = 1 to 1000 do
    Alloc.Scudo.free sc (Alloc.Scudo.malloc sc 64)
  done;
  Alcotest.(check bool) "pool stays bounded" true (Alloc.Scudo.pool_size sc <= 32)

let test_purge_all_drains_pool () =
  let machine = fresh () in
  let sc = Alloc.Scudo.create machine in
  let ps = List.init 8 (fun _ -> Alloc.Scudo.malloc sc 64) in
  List.iter (Alloc.Scudo.free sc) ps;
  Alloc.Scudo.purge_all sc;
  Alcotest.(check int) "pool drained" 0 (Alloc.Scudo.pool_size sc)

let test_scudo_costs_more_than_jemalloc () =
  let m1 = fresh () in
  let je = Alloc.Jemalloc.create m1 in
  for _ = 1 to 100 do
    Alloc.Jemalloc.free je (Alloc.Jemalloc.malloc je 64)
  done;
  let m2 = fresh () in
  let sc = Alloc.Scudo.create m2 in
  for _ = 1 to 100 do
    Alloc.Scudo.free sc (Alloc.Scudo.malloc sc 64)
  done;
  Alcotest.(check bool) "checksummed headers cost cycles" true
    (Sim.Clock.app_busy m2.Alloc.Machine.clock
    > Sim.Clock.app_busy m1.Alloc.Machine.clock)

(* The functor product must give the same guarantees over Scudo. *)
let test_minesweeper_over_scudo_protects () =
  let machine = fresh () in
  let ms = Scudo_ms.create machine in
  let root_slot = Layout.globals_base + 64 in
  let victim = Scudo_ms.malloc ms 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  Scudo_ms.free ms victim;
  let ok = ref true in
  for _ = 1 to 20_000 do
    let p = Scudo_ms.malloc ms 48 in
    if p = victim then ok := false;
    Scudo_ms.free ms p
  done;
  Scudo_ms.drain ms;
  Alcotest.(check bool) "no aliasing over Scudo" true !ok;
  Alcotest.(check bool) "sweeps ran" true
    ((Scudo_ms.stats ms).Minesweeper.Stats.sweeps > 0);
  Alcotest.(check bool) "victim still quarantined" true
    (Scudo_ms.is_quarantined ms victim)

let test_minesweeper_over_scudo_releases () =
  let machine = fresh () in
  let ms = Scudo_ms.create machine in
  let victim = Scudo_ms.malloc ms 48 in
  Scudo_ms.free ms victim;
  (* No pointer anywhere: churn must eventually recycle the address. *)
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < 60_000 do
    let p = Scudo_ms.malloc ms 48 in
    if p = victim then found := true else Scudo_ms.free ms p;
    incr i
  done;
  Alcotest.(check bool) "released and reused" true !found

let test_harness_scudo_schemes () =
  let machine = fresh () in
  let stack =
    Workloads.Harness.build Workloads.Harness.Scudo_baseline ~threads:1 machine
  in
  Alcotest.(check string) "scheme name" "scudo" stack.Workloads.Harness.scheme;
  let p = stack.Workloads.Harness.malloc 64 in
  stack.Workloads.Harness.free ~thread:0 p;
  let machine2 = fresh () in
  let protected_stack =
    Workloads.Harness.build
      (Workloads.Harness.Scudo_sweeper Minesweeper.Config.default)
      ~threads:1 machine2
  in
  Alcotest.(check string) "protected name" "scudo-minesweeper"
    protected_stack.Workloads.Harness.scheme;
  let q = protected_stack.Workloads.Harness.malloc 64 in
  protected_stack.Workloads.Harness.free ~thread:0 q;
  Alcotest.(check bool) "quarantined over scudo" true
    (protected_stack.Workloads.Harness.is_protected_addr q)

let test_attack_on_scudo_stacks () =
  let machine = fresh () in
  let stack =
    Workloads.Harness.build
      (Workloads.Harness.Scudo_sweeper Minesweeper.Config.default)
      ~threads:1 machine
  in
  match Attack.vtable_hijack stack with
  | Attack.Exploited -> Alcotest.fail "MineSweeper-over-Scudo must protect"
  | Attack.Benign | Attack.Prevented_fault -> ()

let suite =
  ( "scudo",
    [
      Alcotest.test_case "malloc/free roundtrip" `Quick
        test_malloc_free_roundtrip;
      Alcotest.test_case "randomised reuse pool" `Quick
        test_randomised_reuse_pool;
      Alcotest.test_case "pool eviction bounded" `Quick
        test_pool_eviction_bounded;
      Alcotest.test_case "purge drains pool" `Quick test_purge_all_drains_pool;
      Alcotest.test_case "costs more than jemalloc" `Quick
        test_scudo_costs_more_than_jemalloc;
      Alcotest.test_case "minesweeper-over-scudo protects" `Quick
        test_minesweeper_over_scudo_protects;
      Alcotest.test_case "minesweeper-over-scudo releases" `Quick
        test_minesweeper_over_scudo_releases;
      Alcotest.test_case "harness scudo schemes" `Quick
        test_harness_scudo_schemes;
      Alcotest.test_case "attack on scudo stack" `Quick
        test_attack_on_scudo_stacks;
    ] )
