(* FFmalloc one-time allocator tests. *)

let fresh () =
  let machine = Alloc.Machine.create () in
  (machine, Ffmalloc.create machine)

let test_monotone_addresses () =
  let _, ff = fresh () in
  (* Within one size pool, addresses strictly increase. *)
  let prev = ref 0 in
  for _ = 1 to 2000 do
    let p = Ffmalloc.malloc ff 64 in
    Alcotest.(check bool) "strictly increasing" true (p > !prev);
    prev := p
  done

let test_never_reuses_va () =
  let _, ff = fresh () in
  let seen = Hashtbl.create 1024 in
  for _ = 1 to 5000 do
    let p = Ffmalloc.malloc ff 64 in
    Alcotest.(check bool) "virgin address" false (Hashtbl.mem seen p);
    Hashtbl.replace seen p ();
    Ffmalloc.free ff p
  done

let test_is_freed_address () =
  let _, ff = fresh () in
  let p = Ffmalloc.malloc ff 64 in
  Alcotest.(check bool) "live not freed" false (Ffmalloc.is_freed_address ff p);
  Ffmalloc.free ff p;
  Alcotest.(check bool) "freed forever" true (Ffmalloc.is_freed_address ff p)

let test_page_released_when_all_dead () =
  let machine, ff = fresh () in
  (* Fill two pool pages of 64B objects, then free them all. *)
  let ps = List.init 128 (fun _ -> Ffmalloc.malloc ff 64) in
  let rss_full = Vmem.committed_bytes machine.Alloc.Machine.mem in
  List.iter (Ffmalloc.free ff) ps;
  let rss_after = Vmem.committed_bytes machine.Alloc.Machine.mem in
  Alcotest.(check bool)
    (Printf.sprintf "pages unmapped (%d -> %d)" rss_full rss_after)
    true
    (rss_after <= rss_full - Vmem.page_size)

let test_single_survivor_pins_page () =
  let machine, ff = fresh () in
  let ps = Array.init 64 (fun _ -> Ffmalloc.malloc ff 64) in
  (* Free all but one object on the page; its page must stay resident. *)
  let keeper = ps.(30) in
  Array.iteri (fun i p -> if i <> 30 then Ffmalloc.free ff p) ps;
  Alcotest.(check bool) "keeper's page still mapped" true
    (Vmem.is_mapped machine.Alloc.Machine.mem keeper);
  Alcotest.(check int) "keeper readable" 0
    (Vmem.load machine.Alloc.Machine.mem (keeper - (keeper mod 8)))

let test_large_allocation_unmapped_on_free () =
  let machine, ff = fresh () in
  let p = Ffmalloc.malloc ff 100_000 in
  Vmem.store machine.Alloc.Machine.mem p 5;
  Ffmalloc.free ff p;
  Alcotest.(check bool) "large range unmapped" false
    (Vmem.is_mapped machine.Alloc.Machine.mem p)

let test_usable_size () =
  let _, ff = fresh () in
  let p = Ffmalloc.malloc ff 50 in
  Alcotest.(check int) "rounded to 16" 64 (Ffmalloc.usable_size ff p);
  let q = Ffmalloc.malloc ff 5000 in
  Alcotest.(check int) "large rounded to pages" (2 * Vmem.page_size)
    (Ffmalloc.usable_size ff q)

let test_live_accounting () =
  let _, ff = fresh () in
  let p = Ffmalloc.malloc ff 100 in
  let q = Ffmalloc.malloc ff 200 in
  Alcotest.(check int) "live count" 2 (Ffmalloc.live_allocations ff);
  Ffmalloc.free ff p;
  Ffmalloc.free ff q;
  Alcotest.(check int) "live empty" 0 (Ffmalloc.live_allocations ff);
  Alcotest.(check int) "bytes empty" 0 (Ffmalloc.live_bytes ff)

let test_va_consumed_monotone () =
  let _, ff = fresh () in
  let v0 = Ffmalloc.va_consumed ff in
  let p = Ffmalloc.malloc ff 64 in
  Ffmalloc.free ff p;
  for _ = 1 to 1000 do
    Ffmalloc.free ff (Ffmalloc.malloc ff 64)
  done;
  Alcotest.(check bool) "address space only grows" true
    (Ffmalloc.va_consumed ff > v0)

let test_free_rejects_garbage () =
  let _, ff = fresh () in
  Alcotest.check_raises "unknown address"
    (Invalid_argument "Ffmalloc.free: not a live allocation") (fun () ->
      Ffmalloc.free ff (Layout.heap_base + 8))

let prop_fragmentation_grows_with_survivors =
  (* The signature FFmalloc behaviour: scattered survivors pin pages, so
     RSS is far above live bytes. *)
  QCheck.Test.make ~name:"scattered survivors inflate FFmalloc RSS" ~count:10
    QCheck.small_int
    (fun seed ->
      let machine, ff = fresh () in
      let rng = Sim.Rng.create seed in
      let survivors = ref [] in
      for _ = 1 to 4000 do
        let p = Ffmalloc.malloc ff 64 in
        if Sim.Rng.bool rng 0.05 then survivors := p :: !survivors
        else Ffmalloc.free ff p
      done;
      let rss = Vmem.committed_bytes machine.Alloc.Machine.mem in
      rss > 3 * Ffmalloc.live_bytes ff)

let suite =
  ( "ffmalloc",
    [
      Alcotest.test_case "monotone addresses" `Quick test_monotone_addresses;
      Alcotest.test_case "never reuses VA" `Quick test_never_reuses_va;
      Alcotest.test_case "is_freed_address" `Quick test_is_freed_address;
      Alcotest.test_case "page released when all dead" `Quick
        test_page_released_when_all_dead;
      Alcotest.test_case "survivor pins page" `Quick
        test_single_survivor_pins_page;
      Alcotest.test_case "large unmapped on free" `Quick
        test_large_allocation_unmapped_on_free;
      Alcotest.test_case "usable size" `Quick test_usable_size;
      Alcotest.test_case "live accounting" `Quick test_live_accounting;
      Alcotest.test_case "VA consumed monotone" `Quick test_va_consumed_monotone;
      Alcotest.test_case "free rejects garbage" `Quick test_free_rejects_garbage;
      QCheck_alcotest.to_alcotest prop_fragmentation_grows_with_survivors;
    ] )
