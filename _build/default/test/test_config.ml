(* Configuration preset tests: the ablation matrix must be wired the way
   Sections 5.4 and 5.5 describe. *)

module C = Minesweeper.Config

let test_default_is_full () =
  let d = C.default in
  Alcotest.(check bool) "quarantining" true d.C.quarantining;
  Alcotest.(check bool) "zeroing" true d.C.zeroing;
  Alcotest.(check bool) "unmapping" true d.C.unmapping;
  Alcotest.(check bool) "sweeping" true d.C.sweeping;
  Alcotest.(check bool) "keep_failed" true d.C.keep_failed;
  Alcotest.(check bool) "purging" true d.C.purging;
  Alcotest.(check (float 0.0001)) "15% threshold" 0.15 d.C.threshold;
  Alcotest.(check (float 0.0001)) "9x unmap factor" 9.0 d.C.unmap_factor

let test_default_fully_concurrent () =
  match C.default.C.concurrency with
  | C.Concurrent { helpers; stop_the_world } ->
    Alcotest.(check int) "6 helpers" 6 helpers;
    Alcotest.(check bool) "no stop-the-world" false stop_the_world
  | C.Sequential -> Alcotest.fail "default must be concurrent"

let test_mostly_concurrent_differs_only_in_stw () =
  match (C.default.C.concurrency, C.mostly_concurrent.C.concurrency) with
  | C.Concurrent d, C.Concurrent m ->
    Alcotest.(check int) "same helpers" d.helpers m.helpers;
    Alcotest.(check bool) "stw on" true m.stop_the_world;
    Alcotest.(check bool) "rest equal" true
      ({ C.mostly_concurrent with C.concurrency = C.default.C.concurrency }
      = C.default)
  | _ -> Alcotest.fail "both must be concurrent"

let test_optimisation_levels_cumulative () =
  (* Each level must add exactly its named feature. *)
  Alcotest.(check int) "five levels" 5 (List.length C.optimisation_levels);
  Alcotest.(check bool) "unoptimised sequential" true
    (C.unoptimised.C.concurrency = C.Sequential);
  Alcotest.(check bool) "unoptimised lacks zeroing" false
    C.unoptimised.C.zeroing;
  Alcotest.(check bool) "+zeroing adds only zeroing" true
    (C.plus_zeroing = { C.unoptimised with C.zeroing = true });
  Alcotest.(check bool) "+unmapping adds only unmapping" true
    (C.plus_unmapping = { C.plus_zeroing with C.unmapping = true });
  Alcotest.(check bool) "+purging equals default" true
    (C.plus_purging = C.default)

let test_partial_versions_ordering () =
  Alcotest.(check int) "six versions" 6 (List.length C.partial_versions);
  Alcotest.(check bool) "base forwards frees" false
    C.partial_base.C.quarantining;
  Alcotest.(check bool) "uz still forwards" false
    C.partial_unmap_zero.C.quarantining;
  Alcotest.(check bool) "uz zeroes" true C.partial_unmap_zero.C.zeroing;
  Alcotest.(check bool) "quarantine doesn't sweep" false
    C.partial_quarantine.C.sweeping;
  Alcotest.(check bool) "sweep version releases regardless" false
    C.partial_sweep.C.keep_failed;
  Alcotest.(check bool) "full version equals default" true
    (C.partial_full = C.default)

let test_pp_mentions_mode () =
  let s = Format.asprintf "%a" C.pp C.default in
  Alcotest.(check bool) "mentions concurrency" true
    (Astring_contains.contains s "concurrent")

let suite =
  ( "minesweeper.config",
    [
      Alcotest.test_case "default is full" `Quick test_default_is_full;
      Alcotest.test_case "default fully concurrent" `Quick
        test_default_fully_concurrent;
      Alcotest.test_case "mostly concurrent = +stw" `Quick
        test_mostly_concurrent_differs_only_in_stw;
      Alcotest.test_case "optimisation levels cumulative" `Quick
        test_optimisation_levels_cumulative;
      Alcotest.test_case "partial versions ordering" `Quick
        test_partial_versions_ordering;
      Alcotest.test_case "pp mentions mode" `Quick test_pp_mentions_mode;
    ] )
