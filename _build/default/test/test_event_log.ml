(* Event-log tests: ring semantics and instance integration. *)

module E = Minesweeper.Event_log
module I = Minesweeper.Instance

let test_record_and_order () =
  let log = E.create ~capacity:16 () in
  E.record log ~now:10 (E.Double_free { addr = 1 });
  E.record log ~now:20 (E.Allocation_paused { cycles = 5 });
  match E.events log with
  | [ (10, E.Double_free { addr = 1 }); (20, E.Allocation_paused { cycles = 5 }) ]
    -> ()
  | _ -> Alcotest.fail "events out of order"

let test_ring_wraps () =
  let log = E.create ~capacity:4 () in
  for i = 1 to 10 do
    E.record log ~now:i (E.Double_free { addr = i })
  done;
  Alcotest.(check int) "total recorded" 10 (E.recorded log);
  let retained = E.events log in
  Alcotest.(check int) "only capacity retained" 4 (List.length retained);
  (match retained with
  | (7, _) :: _ -> ()
  | (t, _) :: _ -> Alcotest.failf "oldest retained should be 7, got %d" t
  | [] -> Alcotest.fail "empty");
  match List.rev retained with
  | (10, _) :: _ -> ()
  | _ -> Alcotest.fail "newest must be 10"

let test_pp_and_dump () =
  let log = E.create () in
  E.record log ~now:1
    (E.Sweep_started { sweep = 1; quarantined_bytes = 4096 });
  E.record log ~now:2 (E.Sweep_finished { sweep = 1; released = 3; failed = 1 });
  let s = Format.asprintf "%a" E.dump log in
  Alcotest.(check bool) "mentions sweep" true
    (Astring_contains.contains s "sweep #1");
  Alcotest.(check bool) "mentions released" true
    (Astring_contains.contains s "released 3")

let test_instance_logs_lifecycle () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  let ms = I.create machine in
  let p = I.malloc ms 64 in
  I.free ms p;
  I.free ms p;
  let big = I.malloc ms 65536 in
  I.free ms big;
  let early = E.events (I.event_log ms) in
  let has_in evs pred = List.exists (fun (_, e) -> pred e) evs in
  Alcotest.(check bool) "free logged" true
    (has_in early (function E.Free_intercepted _ -> true | _ -> false));
  Alcotest.(check bool) "double free logged" true
    (has_in early (function E.Double_free _ -> true | _ -> false));
  Alcotest.(check bool) "unmap logged" true
    (has_in early (function E.Unmapped _ -> true | _ -> false));
  for _ = 1 to 20_000 do
    let q = I.malloc ms 64 in
    I.free ms q
  done;
  I.drain ms;
  let events = E.events (I.event_log ms) in
  let has pred = List.exists (fun (_, e) -> pred e) events in
  Alcotest.(check bool) "sweep start logged" true
    (has (function E.Sweep_started _ -> true | _ -> false));
  Alcotest.(check bool) "sweep finish logged" true
    (has (function E.Sweep_finished _ -> true | _ -> false));
  (* Timestamps must be non-decreasing. *)
  let rec monotone = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (monotone events)

let test_sweep_counters_consistent () =
  let machine = Alloc.Machine.create () in
  let ms = I.create machine in
  for _ = 1 to 20_000 do
    let q = I.malloc ms 64 in
    I.free ms q
  done;
  I.drain ms;
  let events = E.events (I.event_log ms) in
  let released_in_log =
    List.fold_left
      (fun acc (_, e) ->
        match e with E.Sweep_finished { released; _ } -> acc + released | _ -> acc)
      0 events
  in
  (* The log ring may have dropped early sweeps; what remains must not
     exceed the stats total. *)
  Alcotest.(check bool) "log releases <= stats releases" true
    (released_in_log <= (I.stats ms).Minesweeper.Stats.releases)

let suite =
  ( "minesweeper.event_log",
    [
      Alcotest.test_case "record and order" `Quick test_record_and_order;
      Alcotest.test_case "ring wraps" `Quick test_ring_wraps;
      Alcotest.test_case "pp and dump" `Quick test_pp_and_dump;
      Alcotest.test_case "instance logs lifecycle" `Quick
        test_instance_logs_lifecycle;
      Alcotest.test_case "sweep counters consistent" `Quick
        test_sweep_counters_consistent;
    ] )
