(* Report-library tests: summary math, tables, charts, literature data. *)

let test_geomean () =
  Alcotest.(check (float 0.0001)) "empty" 1.0 (Report.Summary.geomean []);
  Alcotest.(check (float 0.0001)) "singleton" 2.0 (Report.Summary.geomean [ 2.0 ]);
  Alcotest.(check (float 0.0001)) "pair" 2.0 (Report.Summary.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 0.0001)) "identity elements" 3.0
    (Report.Summary.geomean [ 3.0; 3.0; 3.0 ])

let test_mean_worst () =
  Alcotest.(check (float 0.0001)) "mean" 2.0 (Report.Summary.mean [ 1.0; 3.0 ]);
  Alcotest.(check (float 0.0001)) "worst" 3.0 (Report.Summary.worst [ 1.0; 3.0; 2.0 ])

let test_percent_overhead () =
  Alcotest.(check (float 0.0001)) "5.4%" 5.4
    (Report.Summary.percent_overhead 1.054)

let test_table_alignment () =
  let t = Report.Table.create ~columns:[ "bench"; "a"; "b" ] in
  Report.Table.add_row t "x" [ 1.0; 2.5 ];
  Report.Table.add_row t "longer-name" [ 10.25; 0.125 ];
  let s = Report.Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: row1 :: row2 :: _ ->
    Alcotest.(check int) "rows equal width" (String.length row1)
      (String.length row2);
    Alcotest.(check bool) "header present" true
      (Astring_contains.contains header "bench")
  | _ -> Alcotest.fail "expected at least three lines");
  Alcotest.(check bool) "values formatted" true
    (Astring_contains.contains s "1.000" && Astring_contains.contains s "10.2")

let test_table_nan () =
  let t = Report.Table.create ~columns:[ "bench"; "v" ] in
  Report.Table.add_row t "x" [ Float.nan ];
  Alcotest.(check bool) "NaN renders as dash" true
    (Astring_contains.contains (Report.Table.render t) "-")

let test_bars () =
  let s = Report.Chart.bars [ ("a", 1.0); ("b", 2.0) ] in
  Alcotest.(check bool) "labels present" true
    (Astring_contains.contains s "a" && Astring_contains.contains s "b");
  (* b's bar should be about twice as long as a's. *)
  let count_hashes line =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 line
  in
  (match String.split_on_char '\n' s with
  | la :: lb :: _ ->
    Alcotest.(check bool) "proportional bars" true
      (count_hashes lb >= (2 * count_hashes la) - 1)
  | _ -> Alcotest.fail "two lines expected")

let test_grouped_bars () =
  let s =
    Report.Chart.grouped_bars ~series:[ "s1"; "s2" ]
      [ ("g", [ 1.0; 2.0 ]) ]
  in
  Alcotest.(check bool) "group label" true (Astring_contains.contains s "g");
  Alcotest.(check bool) "series labels" true
    (Astring_contains.contains s "s1" && Astring_contains.contains s "s2")

let test_line_chart () =
  let series =
    [ ("up", Array.init 10 (fun i -> (float_of_int i /. 9., float_of_int i))) ]
  in
  let s = Report.Chart.line ~series () in
  Alcotest.(check bool) "legend" true (Astring_contains.contains s "up");
  Alcotest.(check bool) "ymax header" true (Astring_contains.contains s "ymax");
  let s_empty = Report.Chart.line ~series:[ ("e", [||]) ] () in
  Alcotest.(check bool) "empty series handled" true
    (Astring_contains.contains s_empty "no data")

let test_literature_fig1 () =
  Alcotest.(check int) "eight NVD years" 8
    (List.length Report.Literature.nvd_uaf);
  Alcotest.(check int) "four kernel years" 4
    (List.length Report.Literature.linux_uaf);
  (* The figure's story: a consistent rise. *)
  let first = List.hd Report.Literature.nvd_uaf in
  let last = List.nth Report.Literature.nvd_uaf 7 in
  Alcotest.(check bool) "rising trend" true
    (last.Report.Literature.uaf_count > 3 * first.Report.Literature.uaf_count)

let test_literature_lookup () =
  (match Report.Literature.slowdown ~scheme:"DangSan" ~bench:"perlbench" with
  | Some v ->
    Alcotest.(check bool) "DangSan perlbench is the 4.6 outlier" true
      (v > 4.0)
  | None -> Alcotest.fail "value expected");
  Alcotest.(check bool) "unknown scheme" true
    (Report.Literature.slowdown ~scheme:"nonesuch" ~bench:"gcc" = None);
  Alcotest.(check bool) "unknown bench" true
    (Report.Literature.memory_overhead ~scheme:"Oscar" ~bench:"nonesuch" = None)

let test_literature_complete () =
  (* Every quoted scheme must cover all 19 SPEC2006 benchmarks in both
     figures. *)
  List.iter
    (fun scheme ->
      List.iter
        (fun bench ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s slowdown" scheme bench)
            true
            (Report.Literature.slowdown ~scheme ~bench <> None);
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s memory" scheme bench)
            true
            (Report.Literature.memory_overhead ~scheme ~bench <> None))
        Workloads.Spec2006.names)
    Report.Literature.quoted_schemes

let prop_geomean_bounded =
  QCheck.Test.make ~name:"geomean between min and max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 100.))
    (fun xs ->
      let g = Report.Summary.geomean xs in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max 0. xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

let suite =
  ( "report",
    [
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "mean/worst" `Quick test_mean_worst;
      Alcotest.test_case "percent overhead" `Quick test_percent_overhead;
      Alcotest.test_case "table alignment" `Quick test_table_alignment;
      Alcotest.test_case "table NaN" `Quick test_table_nan;
      Alcotest.test_case "bars" `Quick test_bars;
      Alcotest.test_case "grouped bars" `Quick test_grouped_bars;
      Alcotest.test_case "line chart" `Quick test_line_chart;
      Alcotest.test_case "literature fig1" `Quick test_literature_fig1;
      Alcotest.test_case "literature lookup" `Quick test_literature_lookup;
      Alcotest.test_case "literature complete" `Quick test_literature_complete;
      QCheck_alcotest.to_alcotest prop_geomean_bounded;
    ] )
