(* Model-based testing: random malloc/free interleavings executed
   simultaneously against the JeMalloc model and a trivial reference
   model (a map of live allocations), checking the allocator invariants
   the rest of the system depends on:

   - served ranges never overlap live ranges;
   - usable_size covers the request and is stable across the lifetime;
   - live accounting matches the reference exactly;
   - the same is re-checked with MineSweeper interposed, where ranges
     additionally must not overlap *quarantined* ranges. *)

type action =
  | Do_malloc of int
  | Do_free of int (* index into live list, modulo length *)

let action_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun size -> Do_malloc size) (int_range 1 40_000));
        (2, map (fun i -> Do_free i) (int_range 0 1000));
      ])

let action_print = function
  | Do_malloc n -> Printf.sprintf "malloc %d" n
  | Do_free i -> Printf.sprintf "free #%d" i

let actions =
  QCheck.make
    ~print:QCheck.Print.(list action_print)
    QCheck.Gen.(list_size (return 400) action_gen)

let overlaps (a, alen) (b, blen) = a < b + blen && b < a + alen

let check_no_overlap live addr len =
  List.for_all (fun (base, l) -> not (overlaps (addr, len) (base, l))) live

let prop_jemalloc_against_model =
  QCheck.Test.make ~name:"jemalloc matches the reference model" ~count:25
    actions
    (fun script ->
      let machine = Alloc.Machine.create () in
      let je = Alloc.Jemalloc.create machine in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun action ->
          match action with
          | Do_malloc size ->
            let addr = Alloc.Jemalloc.malloc je size in
            let usable = Alloc.Jemalloc.usable_size je addr in
            if usable < size then ok := false;
            if not (check_no_overlap !live addr usable) then ok := false;
            live := (addr, usable) :: !live
          | Do_free i ->
            (match !live with
            | [] -> ()
            | _ ->
              let n = i mod List.length !live in
              let addr, usable = List.nth !live n in
              (* usable must be stable until the free *)
              if Alloc.Jemalloc.usable_size je addr <> usable then ok := false;
              Alloc.Jemalloc.free je addr;
              live := List.filteri (fun j _ -> j <> n) !live))
        script;
      !ok
      && Alloc.Jemalloc.live_allocations je = List.length !live
      && Alloc.Jemalloc.live_bytes je
         = List.fold_left (fun acc (_, u) -> acc + u) 0 !live)

let prop_minesweeper_against_model =
  QCheck.Test.make
    ~name:"minesweeper never serves live or quarantined ranges" ~count:15
    actions
    (fun script ->
      let machine = Alloc.Machine.create () in
      List.iter
        (fun (base, size) ->
          Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
        Layout.root_regions;
      let ms = Minesweeper.Instance.create machine in
      let live = ref [] in
      let quarantined = ref [] in
      let ok = ref true in
      List.iter
        (fun action ->
          (* Quarantined entries leave our model set once recycled (we
             detect recycling lazily: if a new allocation overlaps a
             quarantined range, that range must no longer be
             quarantined). *)
          match action with
          | Do_malloc size ->
            let addr = Minesweeper.Instance.malloc ms size in
            let usable =
              Alloc.Jemalloc.usable_size (Minesweeper.Instance.jemalloc ms) addr
            in
            if usable < size then ok := false;
            if not (check_no_overlap !live addr usable) then ok := false;
            quarantined :=
              List.filter
                (fun (base, l, qaddr) ->
                  if overlaps (addr, usable) (base, l) then begin
                    (* Reuse of a once-quarantined range is only legal
                       after release. *)
                    if Minesweeper.Instance.is_quarantined ms qaddr then
                      ok := false;
                    false
                  end
                  else true)
                !quarantined;
            live := (addr, usable) :: !live
          | Do_free i ->
            (match !live with
            | [] -> ()
            | _ ->
              let n = i mod List.length !live in
              let addr, usable = List.nth !live n in
              Minesweeper.Instance.free ms addr;
              if not (Minesweeper.Instance.is_quarantined ms addr) then
                ok := false;
              live := List.filteri (fun j _ -> j <> n) !live;
              quarantined := (addr, usable, addr) :: !quarantined))
        script;
      Minesweeper.Instance.drain ms;
      !ok)

let suite =
  ( "model-based",
    [
      QCheck_alcotest.to_alcotest prop_jemalloc_against_model;
      QCheck_alcotest.to_alcotest prop_minesweeper_against_model;
    ] )
