(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figures 1-19) from the simulation, then runs Bechamel
   micro-benchmarks of the core primitives that back the cost model.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --only fig7,fig10
     dune exec bench/main.exe -- --scale 0.2  -- quick pass
     dune exec bench/main.exe -- --no-micro *)

let only = ref []
let scale = ref 1.0
let micro = ref true
let verbose = ref true

let spec =
  [
    ( "--only",
      Arg.String
        (fun s -> only := String.split_on_char ',' s),
      "FIGS comma-separated figure ids (fig1,fig2,fig7..fig19)" );
    ("--scale", Arg.Set_float scale, "F trace-length scale factor (default 1.0)");
    ("--no-micro", Arg.Clear micro, " skip the Bechamel micro-benchmarks");
    ("--quiet", Arg.Clear verbose, " do not log simulation runs to stderr");
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the primitives whose measured costs back
   the cycle model in [Sim.Cost].                                      *)

let micro_tests () =
  let open Bechamel in
  let shadow = Minesweeper.Shadow.create () in
  let mark_base = Layout.heap_base in
  let shadow_mark =
    Test.make ~name:"shadow mark+test"
      (Staged.stage (fun () ->
           Minesweeper.Shadow.mark shadow (mark_base + 4096);
           ignore
             (Minesweeper.Shadow.range_marked shadow ~addr:mark_base
                ~len:8192)))
  in
  let page = Bytes.make Vmem.page_size '\042' in
  let sweep_page =
    (* The marking phase's inner loop: read each word of a page and test
       whether it could be a heap pointer. *)
    Test.make ~name:"sweep one 4K page"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for k = 0 to (Vmem.page_size / 8) - 1 do
             let w = Int64.to_int (Bytes.get_int64_le page (k * 8)) in
             if w >= Layout.heap_base && w < Layout.heap_limit then incr acc
           done;
           ignore !acc))
  in
  let machine = Alloc.Machine.create () in
  let je = Alloc.Jemalloc.create machine in
  let malloc_free =
    Test.make ~name:"jemalloc malloc+free 64B"
      (Staged.stage (fun () ->
           let p = Alloc.Jemalloc.malloc je 64 in
           Alloc.Jemalloc.free je p))
  in
  let machine2 = Alloc.Machine.create () in
  let ms = Minesweeper.Instance.create machine2 in
  let ms_cycle =
    Test.make ~name:"minesweeper malloc+free 64B"
      (Staged.stage (fun () ->
           let p = Minesweeper.Instance.malloc ms 64 in
           Minesweeper.Instance.free ms p))
  in
  let mem = Vmem.create () in
  Vmem.map mem ~addr:Layout.stack_base ~len:Layout.stack_size;
  let vmem_store =
    Test.make ~name:"vmem store+load"
      (Staged.stage (fun () ->
           Vmem.store mem Layout.stack_base 42;
           ignore (Vmem.load mem Layout.stack_base)))
  in
  [ shadow_mark; sweep_page; malloc_free; ms_cycle; vmem_store ]

let run_micro () =
  let open Bechamel in
  Fmt.pr "==== micro-benchmarks (Bechamel, wall-clock ns/op) ====@.@.";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance results
    in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "  %-32s %10.1f ns/op@." name est
          | Some _ | None -> Fmt.pr "  %-32s (no estimate)@." name)
        ols)
    tests;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse spec
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "MineSweeper reproduction benchmark harness";
  let env = Experiments.make_env ~scale:!scale ~verbose:!verbose () in
  let wanted (key, _) = !only = [] || List.mem key !only in
  let figures = List.filter wanted Experiments.all_figures in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (key, f) ->
      if !verbose then Printf.eprintf "[figure] %s\n%!" key;
      print_string (f env);
      print_newline ())
    figures;
  if !micro && !only = [] then run_micro ();
  if !verbose then
    Printf.eprintf "[done] total %.1f s\n%!" (Unix.gettimeofday () -. t0)
