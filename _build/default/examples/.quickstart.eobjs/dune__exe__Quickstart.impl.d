examples/quickstart.ml: Alloc Fmt Layout Minesweeper Vmem
