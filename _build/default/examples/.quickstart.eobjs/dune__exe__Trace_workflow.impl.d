examples/trace_workflow.ml: Alloc Filename Fmt Layout List Minesweeper Sim Sys Vmem Workloads
