examples/server_cache.ml: Alloc Array Fmt Layout List Minesweeper Sim Vmem Workloads
