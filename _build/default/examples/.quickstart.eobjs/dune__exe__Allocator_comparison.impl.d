examples/allocator_comparison.ml: Array Fmt List Minesweeper Report Sys Workloads
