examples/quickstart.mli:
