(* Compare all schemes on one SPEC benchmark and render the results the
   way the paper's figures do.

   Run with: dune exec examples/allocator_comparison.exe [benchmark]
   (default: xalancbmk, the paper's stress case). *)

let () =
  let bench =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "xalancbmk"
  in
  let profile = Workloads.Spec2006.find bench in
  Fmt.pr "running %s under every scheme (this simulates the full trace)...@.@."
    bench;
  let run scheme = Workloads.Driver.run profile scheme in
  let baseline = run Workloads.Harness.Baseline in
  let schemes =
    [
      Workloads.Harness.Mine_sweeper Minesweeper.Config.default;
      Workloads.Harness.Mine_sweeper Minesweeper.Config.mostly_concurrent;
      Workloads.Harness.Mark_us;
      Workloads.Harness.Ff_malloc;
    ]
  in
  let results = List.map run schemes in
  let table =
    Report.Table.create
      ~columns:[ "scheme"; "slowdown"; "memory"; "peak"; "cpu"; "sweeps" ]
  in
  Report.Table.add_row table "baseline" [ 1.0; 1.0; 1.0; 1.0; 0.0 ];
  List.iter
    (fun (r : Workloads.Driver.result) ->
      Report.Table.add_row table r.scheme
        [
          Workloads.Driver.slowdown ~baseline r;
          Workloads.Driver.memory_overhead ~baseline r;
          Workloads.Driver.peak_memory_overhead ~baseline r;
          r.cpu_utilisation;
          float_of_int r.sweeps;
        ])
    results;
  print_string (Report.Table.render table);
  Fmt.pr "@.slowdown (bars):@.";
  print_string
    (Report.Chart.bars
       (List.map
          (fun (r : Workloads.Driver.result) ->
            (r.scheme, Workloads.Driver.slowdown ~baseline r))
          results));
  Fmt.pr "@.memory over normalised time:@.";
  print_string
    (Report.Chart.line
       ~series:
         (List.map
            (fun (r : Workloads.Driver.result) ->
              ( r.scheme,
                Array.map
                  (fun (x, rss) -> (x, float_of_int rss /. 1048576.))
                  r.rss_trace ))
            (baseline :: results))
       ())
