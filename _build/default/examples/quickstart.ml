(* Quickstart: drop MineSweeper between a program and its allocator.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Everything runs on a simulated machine: memory, clock, cost model. *)
  let machine = Alloc.Machine.create () in
  let ms = Minesweeper.Instance.create machine in
  Fmt.pr "MineSweeper quickstart@.@.";

  (* Allocate an object and write a pointer to it into a "global". *)
  Vmem.map machine.Alloc.Machine.mem ~addr:Layout.globals_base
    ~len:Layout.globals_size;
  let obj = Minesweeper.Instance.malloc ms 64 in
  let global_slot = Layout.globals_base in
  Vmem.store machine.Alloc.Machine.mem global_slot obj;
  Fmt.pr "allocated 64 B at %#x, pointer stored in a global@." obj;

  (* Free it while the pointer is still live: MineSweeper quarantines. *)
  Minesweeper.Instance.free ms obj;
  Fmt.pr "free() intercepted -> quarantined: %b@."
    (Minesweeper.Instance.is_quarantined ms obj);

  (* A second free of the same pointer is a double free; it is absorbed. *)
  Minesweeper.Instance.free ms obj;
  Fmt.pr "double free absorbed (count: %d)@."
    (Minesweeper.Instance.stats ms).Minesweeper.Stats.double_frees;

  (* Drive enough churn that sweeps run. The dangling global pointer
     keeps the object quarantined through every sweep. *)
  let churn () =
    for _ = 1 to 30_000 do
      let p = Minesweeper.Instance.malloc ms 64 in
      Minesweeper.Instance.free ms p
    done;
    Minesweeper.Instance.drain ms
  in
  churn ();
  Fmt.pr "after %d sweeps with the pointer live -> still quarantined: %b@."
    (Minesweeper.Instance.stats ms).Minesweeper.Stats.sweeps
    (Minesweeper.Instance.is_quarantined ms obj);

  (* Clear the last pointer; the next sweeps release the memory. *)
  Vmem.store machine.Alloc.Machine.mem global_slot 0;
  churn ();
  Fmt.pr "after clearing the pointer           -> still quarantined: %b@.@."
    (Minesweeper.Instance.is_quarantined ms obj);

  let stats = Minesweeper.Instance.stats ms in
  Fmt.pr "run statistics: %a@." Minesweeper.Stats.pp stats
