(* Portable traces: derive a workload once, save it, replay it against
   several schemes — the workflow for comparing allocators on exactly
   the same program behaviour.

   Run with: dune exec examples/trace_workflow.exe *)

let profile =
  Workloads.Profile.make ~name:"demo-service" ~suite:"example" ~ops:30_000
    ~size:
      (Sim.Dist.choice
         [
           (0.7, Sim.Dist.uniform ~lo:32 ~hi:256);
           (0.3, Sim.Dist.uniform ~lo:256 ~hi:4096);
         ])
    ~lifetime:(Sim.Dist.exponential ~mean:1500.)
    ~work_per_op:400 ~dangling_rate:0.01 ()

let fresh_stack scheme =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  Workloads.Harness.build scheme ~threads:1 machine

let () =
  (* 1. Derive a concrete trace from the profile (deterministic). *)
  let trace = Workloads.Trace.generate ~seed:2026 profile in
  Fmt.pr "generated '%s': %d ops, %d allocations@."
    trace.Workloads.Trace.name
    (Workloads.Trace.length trace)
    (Workloads.Trace.allocation_count trace);

  (* 2. Save and reload it — the file is plain text, diffable, shareable. *)
  let path = Filename.temp_file "demo" ".trace" in
  Workloads.Trace.to_file trace path;
  let trace = Workloads.Trace.of_file path in
  Fmt.pr "round-tripped through %s@.@." path;

  (* 3. Replay the identical byte-for-byte workload under each scheme. *)
  Fmt.pr "%-22s %14s %9s %10s %7s@." "scheme" "wall (cycles)" "cpu" "rss MiB"
    "sweeps";
  let baseline_wall = ref 0 in
  List.iter
    (fun scheme ->
      let stack = fresh_stack scheme in
      ignore (Workloads.Trace.replay trace stack);
      let machine = stack.Workloads.Harness.machine in
      let wall = Sim.Clock.wall machine.Alloc.Machine.clock in
      if !baseline_wall = 0 then baseline_wall := wall;
      Fmt.pr "%-22s %14d %9.3f %10.2f %7d   (%.2fx)@."
        stack.Workloads.Harness.scheme wall
        (Sim.Clock.cpu_utilisation machine.Alloc.Machine.clock)
        (float_of_int (Vmem.committed_bytes machine.Alloc.Machine.mem)
        /. 1048576.)
        (stack.Workloads.Harness.sweeps ())
        (float_of_int wall /. float_of_int !baseline_wall))
    [
      Workloads.Harness.Baseline;
      Workloads.Harness.Mine_sweeper Minesweeper.Config.default;
      Workloads.Harness.Mine_sweeper Minesweeper.Config.mostly_concurrent;
      Workloads.Harness.Mark_us;
      Workloads.Harness.Ff_malloc;
      Workloads.Harness.Cr_count;
      Workloads.Harness.P_sweeper;
      Workloads.Harness.Dang_san;
    ];
  Sys.remove path
