(* A server-shaped workload: an in-memory session cache with a
   use-after-free bug in its eviction path.

   Sessions are allocated per connection and cached; a background
   evictor frees expired sessions, but a race-prone fast path keeps
   serving a session for a short window after eviction (the bug). We run
   the same server loop over plain JeMalloc and over MineSweeper and
   compare (a) whether the stale window is exploitable and (b) what the
   protection costs.

   Run with: dune exec examples/server_cache.exe *)

let sessions = 2048
let requests = 150_000
let session_size = 384
let stale_window = 32 (* requests during which a freed session is still used *)

type session = {
  mutable addr : int;
  mutable freed_at : int; (* request index of eviction, -1 if live *)
}

let run scheme =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) -> Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  let stack = Workloads.Harness.build scheme ~threads:1 machine in
  let mem = machine.Alloc.Machine.mem in
  let rng = Sim.Rng.create 7 in
  let table = Array.init sessions (fun _ -> { addr = 0; freed_at = -1 }) in
  let stale_reads = ref 0 in
  let corrupted_reads = ref 0 in
  let faults = ref 0 in
  let attacker_tag = 0x01BA_D000 in
  for i = 0 to requests - 1 do
    let s = table.(Sim.Rng.int rng sessions) in
    if s.addr = 0 then begin
      (* connection open: allocate and stamp the session *)
      s.addr <- stack.Workloads.Harness.malloc session_size;
      s.freed_at <- -1;
      Vmem.store mem s.addr (s.addr lxor 0x5555)
    end
    else if s.freed_at >= 0 then begin
      if i - s.freed_at < stale_window then begin
        (* the bug: serve a request from the evicted session *)
        incr stale_reads;
        (match Vmem.load mem s.addr with
        | v when v = attacker_tag -> incr corrupted_reads
        | _ -> ()
        | exception Vmem.Fault _ -> incr faults)
      end
      else begin
        (* window over: the slot is reconnected *)
        s.addr <- stack.Workloads.Harness.malloc session_size;
        s.freed_at <- -1;
        Vmem.store mem s.addr (s.addr lxor 0x5555)
      end
    end
    else if Sim.Rng.bool rng 0.02 then begin
      (* evictor: free the session; the fast path keeps the pointer *)
      stack.Workloads.Harness.free ~thread:0 s.addr;
      s.freed_at <- i
    end
    else begin
      (* attacker-influenced traffic: allocations the attacker fills *)
      let a = stack.Workloads.Harness.malloc session_size in
      Vmem.store mem a attacker_tag;
      stack.Workloads.Harness.free ~thread:0 a
    end;
    stack.Workloads.Harness.tick ();
    Alloc.Machine.charge machine 400 (* request handling work *)
  done;
  stack.Workloads.Harness.drain ();
  let wall = Sim.Clock.wall machine.Alloc.Machine.clock in
  (wall, !stale_reads, !corrupted_reads, !faults, stack.Workloads.Harness.sweeps ())

let () =
  Fmt.pr "session-cache server, %d requests, %d sessions@.@." requests sessions;
  let base_wall, base_stale, base_bad, base_faults, _ =
    run Workloads.Harness.Baseline
  in
  Fmt.pr "JeMalloc (unprotected):@.";
  Fmt.pr "  stale reads: %d, of which attacker-corrupted: %d, faults: %d@."
    base_stale base_bad base_faults;
  let ms_wall, ms_stale, ms_bad, ms_faults, sweeps =
    run (Workloads.Harness.Mine_sweeper Minesweeper.Config.default)
  in
  Fmt.pr "@.MineSweeper:@.";
  Fmt.pr "  stale reads: %d, of which attacker-corrupted: %d, faults: %d@."
    ms_stale ms_bad ms_faults;
  Fmt.pr "  sweeps: %d, slowdown vs unprotected: %.2fx@." sweeps
    (float_of_int ms_wall /. float_of_int base_wall);
  if base_bad > 0 && ms_bad = 0 then
    Fmt.pr "@.the unprotected server leaked attacker data into live \
            sessions;@.MineSweeper turned every one of those reads benign.@."
